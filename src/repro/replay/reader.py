"""Streaming trace reader with slicing and chunk-level random access.

:class:`TraceReader` consumes the container written by
:class:`~repro.replay.writer.TraceWriter`.  When the sidecar index is present
it reads the header and footer directly (no full decompression), can seek to
any chunk, and skips whole chunks whose recorded category set cannot match a
category filter; without the index it falls back to a plain streaming scan,
so a bare ``.pastatrace`` file is always sufficient.

Slicing
-------
:meth:`TraceReader.events` yields decoded events with three composable
filters:

* ``categories`` — keep only the given :class:`EventCategory` values;
* ``start_grid_id`` / ``end_grid_id`` — keep kernel launches whose sequential
  grid index lies in the window, plus the fine-grained events and memory
  profiles belonging to those launches (other bookkeeping events pass
  through, mirroring the semantics of the live range filter);
* ``region`` — keep only events inside ``pasta.start(label)`` /
  ``pasta.stop()`` regions with the given label (region boundaries included).

:meth:`TraceReader.slice_to` materialises any such view as a new, smaller
trace file that replays like the original.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.core.events import (
    BATCH_CATEGORY_BASES,
    EventCategory,
    KernelLaunchEvent,
    KernelMemoryProfile,
    PastaEvent,
    RegionEvent,
)
from repro.errors import TraceError, TraceFormatError
from repro.replay.format import TraceFooter, TraceHeader, decode_event
from repro.replay.writer import TraceWriter, index_path_for

#: Category filter values may be enum members or their string values.
CategoryFilter = Optional[Iterable[Union[str, EventCategory]]]


def _normalize_categories(categories: CategoryFilter) -> Optional[frozenset[str]]:
    if categories is None:
        return None
    out = set()
    for category in categories:
        if isinstance(category, EventCategory):
            member = category
        else:
            try:
                member = EventCategory(str(category).strip().lower())
            except ValueError:
                valid = sorted(c.value for c in EventCategory)
                raise TraceError(
                    f"unknown event category {category!r}; valid: {valid}"
                ) from None
        out.add(member.value)
        # Slicing for a per-record fine-grained category keeps its batch
        # form too: the same data may travel in either shape depending on
        # how the recording backend was configured.
        for batch, base in BATCH_CATEGORY_BASES.items():
            if base is member:
                out.add(batch.value)
    return frozenset(out)


class TraceReader:
    """Reads one trace file; see module docstring for the slicing model."""

    def __init__(
        self,
        path: Union[str, Path],
        strict_schema: bool = True,
        allow_incomplete: bool = False,
    ) -> None:
        self.path = Path(path)
        self.allow_incomplete = allow_incomplete
        if not self.path.exists():
            raise TraceError(f"trace file not found: {self.path}")
        self._index = self._load_index()
        self.header = self._read_header()
        self.header.check_compatible(strict_schema)
        self._footer: Optional[TraceFooter] = None

    # ------------------------------------------------------------------ #
    # low-level access
    # ------------------------------------------------------------------ #
    def _load_index(self) -> Optional[dict]:
        index_path = index_path_for(self.path)
        if not index_path.exists():
            return None
        try:
            index = json.loads(index_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(index, dict) or not {"header", "chunks", "footer"} <= set(index):
            return None
        return index

    @property
    def indexed(self) -> bool:
        """True when the sidecar seek index is available."""
        return self._index is not None

    def _read_member(self, offset: int, length: int) -> bytes:
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            compressed = fh.read(length)
        try:
            return gzip.decompress(compressed)
        except (OSError, EOFError) as error:
            raise TraceFormatError(f"corrupt gzip member at offset {offset}: {error}") from error

    def _read_header(self) -> TraceHeader:
        if self._index is not None:
            data = self._read_member(
                int(self._index["header"]["offset"]), int(self._index["header"]["length"])
            )
            line = data.splitlines()[0]
        else:
            with gzip.open(self.path, "rb") as fh:
                line = fh.readline()
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"{self.path} is not a PASTA trace: {error}") from error
        return TraceHeader.from_record(record)

    @property
    def footer(self) -> TraceFooter:
        """The trace footer (direct read with an index, full scan without)."""
        if self._footer is None:
            if self._index is not None:
                data = self._read_member(
                    int(self._index["footer"]["offset"]), int(self._index["footer"]["length"])
                )
                record = json.loads(data.splitlines()[0])
            else:
                record = None
                for candidate in self._all_records():
                    record = candidate
                if not (isinstance(record, dict) and record.get("kind") == "footer"):
                    raise TraceFormatError(f"trace {self.path} has no footer (truncated?)")
            self._footer = TraceFooter.from_record(record)
        return self._footer

    def _all_records(self) -> Iterator[dict]:
        """Every JSON record in file order, including header and footer."""
        with gzip.open(self.path, "rb") as fh:
            for line in fh:
                if not line.strip():
                    continue
                yield json.loads(line)

    def _event_records(
        self, chunk_categories: Optional[frozenset[str]] = None
    ) -> Iterator[dict]:
        """Encoded event records; ``chunk_categories`` enables chunk skipping."""
        if self._index is not None:
            for chunk in self._index["chunks"]:
                if chunk_categories is not None and not (
                    set(chunk.get("categories") or ()) & chunk_categories
                ):
                    continue
                data = self._read_member(int(chunk["offset"]), int(chunk["length"]))
                for line in data.splitlines():
                    yield json.loads(line)
            return
        for record in self._all_records():
            if record.get("kind") in ("header", "footer"):
                continue
            yield record

    # ------------------------------------------------------------------ #
    # chunk-level random access
    # ------------------------------------------------------------------ #
    @property
    def chunk_count(self) -> int:
        """Number of chunks (0 when the trace has no index)."""
        return len(self._index["chunks"]) if self._index is not None else 0

    def read_chunk(self, index: int) -> list[PastaEvent]:
        """Decode one chunk by ordinal (requires the sidecar index)."""
        if self._index is None:
            raise TraceError(
                f"trace {self.path} has no seek index; chunk access needs the "
                f"{index_path_for(self.path).name} sidecar"
            )
        chunks = self._index["chunks"]
        if not 0 <= index < len(chunks):
            raise TraceError(f"chunk index {index} out of range [0, {len(chunks)})")
        chunk = chunks[index]
        data = self._read_member(int(chunk["offset"]), int(chunk["length"]))
        return [decode_event(json.loads(line)) for line in data.splitlines()]

    # ------------------------------------------------------------------ #
    # event streaming with slicing
    # ------------------------------------------------------------------ #
    def events(
        self,
        categories: CategoryFilter = None,
        start_grid_id: Optional[int] = None,
        end_grid_id: Optional[int] = None,
        region: Optional[str] = None,
        device_index: Optional[int] = None,
    ) -> Iterator[PastaEvent]:
        """Stream decoded events, optionally sliced (see module docstring).

        ``device_index`` keeps only events attributed to one GPU — the
        per-rank view of a multi-GPU recording (every event carries the
        device index its producer stamped, Section IV-D), composable with
        the other filters.
        """
        if not self.allow_incomplete and not self.footer.complete:
            raise TraceError(
                f"trace {self.path} is incomplete (recording aborted: "
                f"{self.footer.abort_reason or 'unknown'}); pass "
                f"allow_incomplete=True to analyse the partial stream anyway"
            )
        wanted = _normalize_categories(categories)
        kernel_window = start_grid_id is not None or end_grid_id is not None
        # Chunk skipping is only sound for a pure category slice: grid-window
        # and region slicing need to observe events that are not themselves
        # yielded (region boundaries, launches defining the window).
        skip_filter = wanted if (not kernel_window and region is None) else None
        launches_in_window: Optional[frozenset[int]] = None
        if kernel_window:
            # Backends emit a kernel's fine-grained events *before* its
            # canonical launch-end event, so the window's launch-id set must
            # be collected in a cheap pre-pass over the raw records.
            launches_in_window = self._launches_in_window(start_grid_id, end_grid_id)
        region_depth = 0
        for record in self._event_records(skip_filter):
            event = decode_event(record)
            if device_index is not None and event.device_index != device_index:
                continue
            if region is not None:
                if isinstance(event, RegionEvent) and event.label == region:
                    if event.starting:
                        region_depth += 1
                    else:
                        if region_depth <= 0:
                            continue
                        region_depth -= 1
                elif region_depth <= 0:
                    continue
            if launches_in_window is not None:
                if isinstance(event, KernelLaunchEvent):
                    if event.launch_id not in launches_in_window:
                        continue
                else:
                    launch_id = getattr(event, "kernel_launch_id", None)
                    if launch_id is None and isinstance(event, KernelMemoryProfile):
                        launch_id = event.launch_id
                    if launch_id is not None and launch_id not in launches_in_window:
                        continue
            if wanted is not None and event.category.value not in wanted:
                continue
            yield event

    def _launches_in_window(
        self, start_grid_id: Optional[int], end_grid_id: Optional[int]
    ) -> frozenset[int]:
        """Launch ids of the kernel launches inside a grid-index window.

        Works on the raw records (no event decoding) so the pre-pass costs
        one decompress + JSON parse of the kernel-launch lines only.
        """
        launch_tag = KernelLaunchEvent.__name__
        kernel_chunks = frozenset({EventCategory.KERNEL_LAUNCH.value})
        launches = set()
        for record in self._event_records(kernel_chunks):
            if record.get("type") != launch_tag:
                continue
            grid_index = int(record.get("grid_index", 0))
            if start_grid_id is not None and grid_index < start_grid_id:
                continue
            if end_grid_id is not None and grid_index > end_grid_id:
                continue
            launches.add(int(record.get("launch_id", 0)))
        return frozenset(launches)

    def __iter__(self) -> Iterator[PastaEvent]:
        return self.events()

    # ------------------------------------------------------------------ #
    # verification / summary / slicing
    # ------------------------------------------------------------------ #
    def verify(self) -> bool:
        """Recompute the content digest and compare against the footer."""
        footer = self.footer
        hasher = hashlib.sha256()
        count = 0
        previous: Optional[bytes] = None
        first = True
        with gzip.open(self.path, "rb") as fh:
            for line in fh:
                if first:
                    first = False  # header line: never part of the digest
                    continue
                if previous is not None:
                    hasher.update(previous)
                    count += 1
                previous = line
        # `previous` now holds the footer line, which is not hashed.
        return hasher.hexdigest() == footer.digest and count == footer.event_count

    def info(self) -> dict[str, object]:
        """Summary of the trace for ``pasta-trace info``."""
        footer = self.footer
        return {
            "path": str(self.path),
            "file_bytes": self.path.stat().st_size,
            "indexed": self.indexed,
            "chunks": self.chunk_count or footer.chunk_count,
            "header": dataclasses.asdict(self.header),
            "footer": dataclasses.asdict(footer),
        }

    def slice_to(
        self,
        path: Union[str, Path],
        categories: CategoryFilter = None,
        start_grid_id: Optional[int] = None,
        end_grid_id: Optional[int] = None,
        region: Optional[str] = None,
        device_index: Optional[int] = None,
        chunk_events: Optional[int] = None,
    ) -> TraceFooter:
        """Write a sliced copy of this trace to ``path``."""
        workload = dict(self.header.workload)
        workload["sliced_from"] = str(self.path)
        if device_index is not None:
            workload["sliced_device_index"] = int(device_index)
        header = dataclasses.replace(self.header, workload=workload)
        writer_kwargs = {} if chunk_events is None else {"chunk_events": chunk_events}
        with TraceWriter(path, header, **writer_kwargs) as writer:
            for event in self.events(
                categories=categories,
                start_grid_id=start_grid_id,
                end_grid_id=end_grid_id,
                region=region,
                device_index=device_index,
            ):
                writer.write(event)
            return writer.close()
