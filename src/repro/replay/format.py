"""Versioned on-disk trace format: event codecs, container header and footer.

A PASTA trace file persists the normalised event stream that flows across the
handler -> processor boundary, so one simulation can feed arbitrarily many
offline analyses (the record-once/analyze-many model of vendor profilers such
as nvbit and rocprofiler).

Container layout
----------------
A trace is a sequence of **concatenated gzip members**:

* member 0 — one JSON line: the :class:`TraceHeader` (``"kind": "header"``),
  carrying the device spec, analysis model, backend, package version and the
  schema fingerprint of every registered event codec;
* members 1..N — **chunks**: up to ``chunk_events`` encoded events, one JSON
  line each (``"type": <codec tag>``);
* the final member — one JSON line: the :class:`TraceFooter`
  (``"kind": "footer"``) with event counts, per-category counts and the
  SHA-256 content digest of the encoded event lines.

Because every chunk is an independent gzip member, a sidecar index of
``(offset, length)`` pairs (written by :class:`~repro.replay.writer.TraceWriter`)
allows seeking straight to any chunk or to the footer without decompressing
the whole stream.

Event codecs
------------
Every :class:`~repro.core.events.PastaEvent` dataclass is registered with a
codec derived from its resolved type hints: encoding routes through
:func:`~repro.core.serialization.json_sanitize` (so codec output is always
JSON-native and survives further sanitisation unchanged), and decoding
rebuilds enums, nested dataclasses, tuples and integer-keyed maps from the
hints.  Each codec carries a *schema fingerprint* — a digest of the event
class's field names and types — recorded in the header and checked on read,
so a trace written under a different event schema fails loudly instead of
silently misdecoding.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional, Union, get_args, get_origin, get_type_hints

import repro
from repro.core import events as _events
from repro.core.events import PastaEvent
from repro.core.serialization import json_sanitize
from repro.errors import TraceFormatError, TraceSchemaError
from repro.gpusim.device import DeviceSpec, Vendor

#: Version of the container layout (bumped on incompatible changes).
TRACE_FORMAT_VERSION = 1

#: Conventional file suffix for PASTA traces.
TRACE_SUFFIX = ".pastatrace"

#: Default number of events per compressed chunk.
DEFAULT_CHUNK_EVENTS = 1024


# --------------------------------------------------------------------------- #
# event codecs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EventCodec:
    """Encoder/decoder for one :class:`PastaEvent` subclass."""

    tag: str
    cls: type
    #: Resolved ``{field name: type}`` hints used to rebuild rich values.
    hints: Mapping[str, Any]
    #: Digest of the event class's field names and types (schema version).
    fingerprint: str
    #: Per-field decoders/encoders specialised from the hints at registration
    #: time, so coding an event is a flat loop of direct calls rather than a
    #: reflective walk over typing generics per value.
    field_decoders: tuple[tuple[str, Any], ...] = ()
    field_encoders: tuple[tuple[str, Any], ...] = ()


_CODECS: dict[str, EventCodec] = {}
_CODECS_BY_CLS: dict[type, EventCodec] = {}


def _schema_fingerprint(cls: type) -> str:
    """Fingerprint an event dataclass's field names and resolved types."""
    hints = get_type_hints(cls)
    shape = [(f.name, str(hints.get(f.name, ""))) for f in dataclasses.fields(cls)]
    return hashlib.sha256(json.dumps(shape, sort_keys=True).encode("utf-8")).hexdigest()[:16]


def _make_value_decoder(hint: Any):
    """Build a ``JSON-native value -> rich value`` function for one type hint."""
    origin = get_origin(hint)
    if origin is Union:
        args = [a for a in get_args(hint) if a is not type(None)]
        inner = _make_value_decoder(args[0]) if args else None
        if inner is None:
            return lambda v: v
        return lambda v: None if v is None else inner(v)
    if isinstance(hint, type) and issubclass(hint, Enum):
        return hint
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            inner = _make_value_decoder(args[0])
            return lambda v: tuple(inner(item) for item in v)
        if args:
            inners = [_make_value_decoder(a) for a in args]
            return lambda v: tuple(f(item) for f, item in zip(inners, v))
        return tuple
    if origin is list:
        args = get_args(hint)
        inner = _make_value_decoder(args[0]) if args else (lambda v: v)
        return lambda v: [inner(item) for item in v]
    if origin is dict:
        key_hint, value_hint = get_args(hint) or (None, None)
        decode_key = _make_value_decoder(key_hint)
        decode_value = _make_value_decoder(value_hint)
        if key_hint in (int, float):
            key_cast = key_hint  # JSON object keys always arrive as strings
        else:
            key_cast = decode_key
        return lambda v: {key_cast(k): decode_value(item) for k, item in v.items()}
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        nested_hints = get_type_hints(hint)
        nested = tuple(
            (f.name, _make_value_decoder(nested_hints.get(f.name)))
            for f in dataclasses.fields(hint)
        )
        return lambda v: hint(**{name: fn(v[name]) for name, fn in nested if name in v})
    if hint is float:
        return float
    return lambda v: v


def _make_value_encoder(hint: Any):
    """Build a ``rich value -> JSON-native value`` function for one type hint.

    The inverse of :func:`_make_value_decoder`, specialised so that encoding
    skips the generic recursive walk of
    :func:`~repro.core.serialization.json_sanitize`; output is identical
    (``json_sanitize`` applied to it is the identity).
    """
    origin = get_origin(hint)
    if origin is Union:
        args = [a for a in get_args(hint) if a is not type(None)]
        inner = _make_value_encoder(args[0]) if args else None
        if inner is None:
            return json_sanitize
        return lambda v: None if v is None else inner(v)
    if isinstance(hint, type) and issubclass(hint, Enum):
        return lambda v: v.value
    if origin is tuple:
        args = get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            inner = _make_value_encoder(args[0])
            return lambda v: [inner(item) for item in v]
        if args:
            inners = [_make_value_encoder(a) for a in args]
            return lambda v: [fn(item) for fn, item in zip(inners, v)]
        return list
    if origin is list:
        args = get_args(hint)
        inner = _make_value_encoder(args[0]) if args else json_sanitize
        return lambda v: [inner(item) for item in v]
    if origin is dict:
        _key_hint, value_hint = get_args(hint) or (None, None)
        encode_value = _make_value_encoder(value_hint)
        return lambda v: {
            str(k.value if isinstance(k, Enum) else k): encode_value(item)
            for k, item in v.items()
        }
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        nested_hints = get_type_hints(hint)
        nested = tuple(
            (f.name, _make_value_encoder(nested_hints.get(f.name)))
            for f in dataclasses.fields(hint)
        )
        return lambda v: {name: fn(getattr(v, name)) for name, fn in nested}
    if hint is float:
        return float
    if hint in (int, str, bool):
        return lambda v: v
    return json_sanitize


def register_event_codec(cls: type, tag: Optional[str] = None) -> EventCodec:
    """Register a codec for an event dataclass (idempotent per class)."""
    if not (dataclasses.is_dataclass(cls) and issubclass(cls, PastaEvent)):
        raise TraceFormatError(f"{cls!r} is not a PastaEvent dataclass")
    existing = _CODECS_BY_CLS.get(cls)
    if existing is not None:
        return existing
    tag = tag or cls.__name__
    if tag in _CODECS:
        raise TraceFormatError(f"event codec tag {tag!r} is already registered")
    hints = get_type_hints(cls)
    codec = EventCodec(
        tag=tag,
        cls=cls,
        hints=hints,
        fingerprint=_schema_fingerprint(cls),
        field_decoders=tuple(
            (f.name, _make_value_decoder(hints.get(f.name)))
            for f in dataclasses.fields(cls)
        ),
        field_encoders=tuple(
            (f.name, _make_value_encoder(hints.get(f.name)))
            for f in dataclasses.fields(cls)
        ),
    )
    _CODECS[tag] = codec
    _CODECS_BY_CLS[cls] = codec
    return codec


def registered_codecs() -> dict[str, EventCodec]:
    """All registered codecs, keyed by tag."""
    return dict(_CODECS)


def current_schemas() -> dict[str, str]:
    """``{tag: fingerprint}`` for every registered codec (goes in the header)."""
    return {tag: codec.fingerprint for tag, codec in sorted(_CODECS.items())}


def dumps_record(record: Mapping[str, object]) -> str:
    """Serialise an already-JSON-native record deterministically.

    The hot-path twin of :func:`~repro.core.serialization.stable_json_dumps`:
    codec output is JSON-native by construction, so the recursive sanitise
    pass is skipped and only the deterministic dump (sorted keys, compact
    separators, no NaN) remains.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"), allow_nan=False)


def encode_event(event: PastaEvent) -> dict[str, object]:
    """Encode one event into a JSON-native record tagged with its codec."""
    codec = _CODECS_BY_CLS.get(type(event))
    if codec is None:
        raise TraceFormatError(
            f"no codec registered for event class {type(event).__name__!r}; "
            f"register it with register_event_codec()"
        )
    record: dict[str, object] = {"type": codec.tag}
    for name, encode in codec.field_encoders:
        record[name] = encode(getattr(event, name))
    return record


def decode_event(record: Mapping[str, object]) -> PastaEvent:
    """Decode one record back into its event dataclass (inverse of encode)."""
    tag = record.get("type")
    codec = _CODECS.get(str(tag))
    if codec is None:
        raise TraceFormatError(
            f"unknown event type tag {tag!r}; known: {sorted(_CODECS)}"
        )
    return codec.cls(**{
        name: decode(record[name])
        for name, decode in codec.field_decoders
        if name in record
    })


#: The complete built-in event taxonomy (Table II) gets a codec at import time.
_BUILTIN_EVENT_CLASSES: tuple[type, ...] = (
    _events.PastaEvent,
    _events.RuntimeApiEvent,
    _events.KernelLaunchEvent,
    _events.MemoryAllocEvent,
    _events.MemoryFreeEvent,
    _events.MemcpyEvent,
    _events.MemsetEvent,
    _events.SynchronizationEvent,
    _events.MemoryAccessEvent,
    _events.InstructionEvent,
    _events.MemoryAccessBatch,
    _events.InstructionBatch,
    _events.KernelMemoryProfile,
    _events.OperatorStartEvent,
    _events.OperatorEndEvent,
    _events.TensorAllocEvent,
    _events.TensorFreeEvent,
    _events.RegionEvent,
)

for _cls in _BUILTIN_EVENT_CLASSES:
    register_event_codec(_cls)


# --------------------------------------------------------------------------- #
# container header / footer
# --------------------------------------------------------------------------- #
@dataclass
class TraceHeader:
    """First record of a trace: provenance and schema metadata."""

    format_version: int = TRACE_FORMAT_VERSION
    repro_version: str = ""
    created_unix: float = 0.0
    #: Sanitised :class:`~repro.gpusim.device.DeviceSpec` fields.
    device: dict[str, object] = field(default_factory=dict)
    analysis_model: str = "gpu_resident"
    #: Vendor backend name (``"compute_sanitizer"``, ``"nvbit"``, ...).
    backend: str = ""
    #: :class:`~repro.gpusim.costmodel.InstrumentationBackend` value.
    instrumentation: str = ""
    fine_grained: bool = False
    #: Free-form workload description (model, mode, iterations, ...).
    workload: dict[str, object] = field(default_factory=dict)
    #: ``{codec tag: schema fingerprint}`` at recording time.
    schemas: dict[str, str] = field(default_factory=dict)

    @classmethod
    def for_recording(
        cls,
        device_spec: DeviceSpec,
        analysis_model: str,
        backend: str,
        instrumentation: str,
        fine_grained: bool = False,
        workload: Optional[Mapping[str, object]] = None,
    ) -> "TraceHeader":
        """Build a header for a new recording on the current package version."""
        return cls(
            format_version=TRACE_FORMAT_VERSION,
            repro_version=repro.__version__,
            created_unix=time.time(),
            device=json_sanitize(device_spec),
            analysis_model=str(analysis_model),
            backend=str(backend),
            instrumentation=str(instrumentation),
            fine_grained=bool(fine_grained),
            workload=dict(workload or {}),
            schemas=current_schemas(),
        )

    def to_record(self) -> dict[str, object]:
        """JSON-native header record (``"kind": "header"``)."""
        record = {"kind": "header", "magic": "pasta-trace"}
        record.update(json_sanitize(dataclasses.asdict(self)))
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceHeader":
        if record.get("kind") != "header":
            raise TraceFormatError("trace does not start with a header record")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})  # type: ignore[arg-type]

    def device_spec(self) -> DeviceSpec:
        """Rebuild the recorded :class:`DeviceSpec`."""
        data = dict(self.device)
        return DeviceSpec(
            name=str(data["name"]),
            vendor=Vendor(data["vendor"]),
            memory_bytes=int(data["memory_bytes"]),  # type: ignore[arg-type]
            sm_count=int(data["sm_count"]),  # type: ignore[arg-type]
            threads_per_sm=int(data["threads_per_sm"]),  # type: ignore[arg-type]
            core_clock_mhz=int(data["core_clock_mhz"]),  # type: ignore[arg-type]
            memory_bandwidth_gbs=float(data["memory_bandwidth_gbs"]),  # type: ignore[arg-type]
            pcie_bandwidth_gbs=float(data["pcie_bandwidth_gbs"]),  # type: ignore[arg-type]
            compute_capability=str(data["compute_capability"]),
        )

    def check_compatible(self, strict_schema: bool = True) -> None:
        """Raise if this trace cannot be decoded by the current code."""
        if int(self.format_version) > TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"trace format version {self.format_version} is newer than the "
                f"supported version {TRACE_FORMAT_VERSION}"
            )
        if not strict_schema:
            return
        ours = current_schemas()
        mismatched = sorted(
            tag for tag, fp in self.schemas.items() if tag in ours and ours[tag] != fp
        )
        if mismatched:
            raise TraceSchemaError(
                f"trace was recorded under incompatible event schemas for {mismatched} "
                f"(recorded by repro {self.repro_version!r}, running {repro.__version__!r}); "
                f"pass strict_schema=False to attempt a best-effort read"
            )
        unknown = sorted(tag for tag in self.schemas if tag not in ours)
        if unknown:
            raise TraceSchemaError(
                f"trace contains event types with no registered codec: {unknown}"
            )


@dataclass
class TraceFooter:
    """Last record of a trace: totals and the content digest."""

    event_count: int = 0
    chunk_count: int = 0
    category_counts: dict[str, int] = field(default_factory=dict)
    #: SHA-256 over the encoded (uncompressed) event lines, in order.
    digest: str = ""
    #: False when the recording was aborted (e.g. the workload crashed
    #: mid-session): the events written are internally consistent, but the
    #: stream does not cover the whole run.
    complete: bool = True
    #: Why an incomplete recording ended ('' for clean recordings).
    abort_reason: str = ""

    def to_record(self) -> dict[str, object]:
        record = {"kind": "footer"}
        record.update(json_sanitize(dataclasses.asdict(self)))
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceFooter":
        if record.get("kind") != "footer":
            raise TraceFormatError("record is not a trace footer")
        known = {f.name for f in dataclasses.fields(cls)}
        out = cls(**{k: v for k, v in record.items() if k in known})  # type: ignore[arg-type]
        out.category_counts = {str(k): int(v) for k, v in out.category_counts.items()}
        return out
