"""Trace record & replay: persistent event streams with offline analysis.

This package turns one simulation into arbitrarily many analyses — the
record-once/analyze-many model of vendor profilers' offline workflows:

* :mod:`repro.replay.format` — the versioned on-disk trace format: per-event
  codecs with schema-version checks, and a gzip-compressed chunked JSONL
  container with a provenance header and a digest-bearing footer;
* :mod:`repro.replay.writer` — :class:`TraceWriter`, the buffered recording
  tap that ``PastaSession(record_to=...)`` installs between the event handler
  and the event processor;
* :mod:`repro.replay.reader` — :class:`TraceReader`, a streaming reader with
  category / kernel-range / region slicing and a lightweight seek index;
* :mod:`repro.replay.replayer` — :class:`TraceReplayer`, which re-drives any
  tool set (optionally under a different analysis model or cost-model
  configuration) through a fresh event processor with no runtime attached;
* :mod:`repro.replay.cli` — the ``pasta-trace`` command
  (``record`` / ``replay`` / ``info`` / ``slice``).
"""

from repro.replay.format import (
    TRACE_FORMAT_VERSION,
    TRACE_SUFFIX,
    EventCodec,
    TraceFooter,
    TraceHeader,
    current_schemas,
    decode_event,
    encode_event,
    register_event_codec,
    registered_codecs,
)
from repro.replay.reader import TraceReader
from repro.replay.replayer import ReplayResult, TraceAddressResolver, TraceReplayer, replay_trace
from repro.replay.writer import TraceWriter, index_path_for

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_SUFFIX",
    "EventCodec",
    "ReplayResult",
    "TraceAddressResolver",
    "TraceFooter",
    "TraceHeader",
    "TraceReader",
    "TraceReplayer",
    "TraceWriter",
    "current_schemas",
    "decode_event",
    "encode_event",
    "index_path_for",
    "register_event_codec",
    "registered_codecs",
    "replay_trace",
]
