"""The daemon's persistent worker pool and job table.

A :class:`JobManager` owns everything stateful behind the HTTP surface:

* a **worker pool** of plain threads executing submissions through the
  unified runner (:func:`repro.api.runner.execute_payload`) — the same code
  path a local ``pasta profile`` run takes, which is what makes remote
  results byte-identical to local ones;
* the **content-addressed cache** (:class:`~repro.campaign.cache.ResultCache`)
  under ``<data_dir>/cache``: a submission whose spec digest is already
  cached completes without simulating anything, and the same directory is
  what the daemon serves to remote campaign schedulers over
  ``GET/PUT /v1/cache/<digest>``;
* a **job journal** (:class:`~repro.campaign.store.ResultStore`, the PR 8
  crash-safe JSONL store) under ``<data_dir>/jobs.jsonl``: every submission
  appends a ``submitted`` record, every terminal transition a ``finished``
  record, so a daemon restart — including ``kill -9`` — re-enqueues exactly
  the jobs that never finished and restores the rest as history;
* **auth-less multi-tenancy**: every job belongs to a namespace, and
  per-namespace in-flight / total quotas turn runaway clients into 429-style
  :class:`QuotaExceeded` rejections instead of unbounded queues.

Streaming: each job accumulates its lifecycle as a list of protocol records
(:mod:`repro.serve.protocol`); :meth:`JobManager.stream` replays them from
any index and then blocks for new ones, which is how ``GET
/v1/jobs/<id>/stream`` resumes a disconnected client mid-campaign without
losing or duplicating records.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

import repro
from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.core.serialization import content_digest, json_sanitize
from repro.errors import ReproError
from repro.obs.telemetry import active as _active_telemetry
from repro.serve.protocol import (
    DEFAULT_NAMESPACE,
    JOB_KINDS,
    TERMINAL_STATES,
    record,
    validate_namespace,
)

#: Default per-namespace cap on queued + running jobs.
DEFAULT_QUOTA_INFLIGHT = 64

#: Seconds a blocked stream waits between liveness checks.
_STREAM_POLL_S = 0.2


class QuotaExceeded(ReproError):
    """A namespace hit its in-flight or total submission quota (HTTP 429)."""

    def __init__(self, message: str, *, namespace: str, quota: str) -> None:
        super().__init__(message)
        self.namespace = namespace
        #: Which quota tripped: ``"inflight"`` or ``"total"``.
        self.quota = quota


@dataclass
class Job:
    """One submission's full lifecycle, held in memory by the manager."""

    id: str
    namespace: str
    kind: str
    payload: dict[str, object]
    digest: str
    state: str = "queued"
    cache_hit: bool = False
    error: Optional[str] = None
    created_unix: float = field(default_factory=lambda: round(time.time(), 6))
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: Protocol records accumulated so far (what ``/stream`` replays).
    events: list[dict[str, object]] = field(default_factory=list)
    cancel_requested: bool = False
    #: The ``result`` protocol record's payload, once produced.
    result: Optional[dict[str, object]] = None
    #: True when the job was re-enqueued by a daemon restart.
    resumed: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_record(self) -> dict[str, object]:
        """The job's current ``type="job"`` status record."""
        return record(
            "job",
            event="status",
            job_id=self.id,
            namespace=self.namespace,
            kind=self.kind,
            state=self.state,
            digest=self.digest,
            cache_hit=self.cache_hit,
            created_unix=self.created_unix,
            started_unix=self.started_unix,
            finished_unix=self.finished_unix,
            error=self.error,
            events=len(self.events),
            resumed=self.resumed,
        )


def classify_submission(body: Mapping[str, object]) -> tuple[str, dict[str, object]]:
    """Split a submission body into ``(kind, spec_dict)``.

    Accepts either an envelope ``{"kind": "profile"|"campaign", "spec": {...}}``
    or a bare spec dict, classified by its identifying field: a
    :class:`ProfileSpec` always has ``model``, a :class:`CampaignSpec` always
    has ``name``.
    """
    if "kind" in body or "spec" in body:
        kind = body.get("kind")
        spec = body.get("spec")
        if kind not in JOB_KINDS:
            raise ReproError(
                f"submission kind must be one of {list(JOB_KINDS)}, got {kind!r}"
            )
        if not isinstance(spec, Mapping):
            raise ReproError("submission envelope needs a 'spec' object")
        return str(kind), dict(spec)
    if "model" in body:
        return "profile", dict(body)
    if "name" in body:
        return "campaign", dict(body)
    raise ReproError(
        "submission is neither a ProfileSpec (needs 'model') nor a "
        "CampaignSpec (needs 'name'); or wrap it as {'kind': ..., 'spec': ...}"
    )


class JobManager:
    """Queue, execute, persist and stream profiling jobs."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        *,
        workers: int = 2,
        quota_inflight: Optional[int] = DEFAULT_QUOTA_INFLIGHT,
        quota_total: Optional[int] = None,
        version: Optional[str] = None,
        fsync: bool = False,
    ) -> None:
        if workers < 1:
            raise ReproError(f"JobManager needs at least 1 worker, got {workers}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else repro.__version__
        self.cache = ResultCache(self.data_dir / "cache", fsync=fsync)
        self.journal = ResultStore(self.data_dir / "jobs.jsonl", fsync=fsync)
        self.quota_inflight = quota_inflight
        self.quota_total = quota_total
        self.started_unix = round(time.time(), 6)

        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        #: One condition guards the job table, event lists and counters;
        #: every append notifies all blocked streams.
        self._cond = threading.Condition()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._seq = itertools.count(1)
        self._closed = False
        #: Simulations actually run (profile jobs + campaign cells).
        self.executed = 0
        #: Submissions (or cells) answered from the cache.
        self.cache_hits = 0
        #: Jobs re-enqueued from the journal on startup.
        self.resumed = 0
        #: Submissions rejected by a quota.
        self.quota_rejections = 0

        self._recover()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"pasta-serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _digest_of(self, kind: str, payload: Mapping[str, object]) -> str:
        """Validate a spec payload and compute its content digest."""
        if kind == "profile":
            from repro.api.spec import ProfileSpec

            spec = ProfileSpec.from_dict(payload)
            if spec.record_to is not None:
                raise ReproError(
                    "remote runs cannot record traces to a client-side path; "
                    "drop 'record_to' from the submitted spec"
                )
            return spec.digest(self.version)
        if kind == "campaign":
            campaign = CampaignSpec.from_dict(payload)
            # Expansion validates every axis value early, so a bad grid is a
            # 400 at submit time, not a failed job minutes later.
            campaign.expand()
            return content_digest(campaign.to_dict(), self.version)
        raise ReproError(f"unknown job kind {kind!r}; expected {list(JOB_KINDS)}")

    def _check_quotas(self, namespace: str) -> None:
        """Raise :class:`QuotaExceeded` when ``namespace`` is over budget."""
        mine = [j for j in self._jobs.values() if j.namespace == namespace]
        if self.quota_total is not None and len(mine) >= self.quota_total:
            self.quota_rejections += 1
            raise QuotaExceeded(
                f"namespace {namespace!r} reached its total submission quota "
                f"({self.quota_total})",
                namespace=namespace, quota="total",
            )
        if self.quota_inflight is not None:
            inflight = sum(1 for j in mine if not j.terminal)
            if inflight >= self.quota_inflight:
                self.quota_rejections += 1
                raise QuotaExceeded(
                    f"namespace {namespace!r} has {inflight} jobs in flight "
                    f"(quota {self.quota_inflight}); wait for one to finish "
                    f"or cancel it",
                    namespace=namespace, quota="inflight",
                )

    def submit(
        self,
        payload: Mapping[str, object],
        *,
        namespace: str = DEFAULT_NAMESPACE,
        kind: Optional[str] = None,
    ) -> Job:
        """Queue one submission; returns the created :class:`Job`.

        ``payload`` is a spec dict (or submission envelope, see
        :func:`classify_submission`).  Raises :class:`ReproError` on an
        invalid spec and :class:`QuotaExceeded` over quota — the daemon maps
        those to 400 / 429 error records.
        """
        namespace = validate_namespace(namespace)
        if kind is None:
            kind, spec_payload = classify_submission(payload)
        else:
            _, spec_payload = (
                classify_submission(payload) if ("kind" in payload or "spec" in payload)
                else (kind, dict(payload))
            )
        digest = self._digest_of(kind, spec_payload)
        telemetry = _active_telemetry()
        with self._cond:
            if self._closed:
                raise ReproError("the job manager is shut down")
            self._check_quotas(namespace)
            job = Job(
                id=f"job-{next(self._seq):06d}-{os.urandom(3).hex()}",
                namespace=namespace,
                kind=kind,
                payload=json_sanitize(dict(spec_payload)),
                digest=digest,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self.journal.append({
                "event": "submitted",
                "job_id": job.id,
                "namespace": job.namespace,
                "kind": job.kind,
                "payload": job.payload,
                "digest": job.digest,
                "created_unix": job.created_unix,
            })
            self._emit_locked(job, self._job_event(job, "queued"))
        telemetry.counter("serve.jobs_submitted").inc()
        self._queue.put(job.id)
        return job

    # ------------------------------------------------------------------ #
    # recovery (daemon restart / kill -9)
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        """Rebuild the job table from the journal and re-enqueue open work.

        ``submitted`` records without a matching ``finished`` record are jobs
        a previous daemon accepted but never completed — they are re-queued
        in submission order with their original ids.  Finished jobs are
        restored as terminal history (their result events are synthesized
        from the journal record, and for profile jobs the full result is
        still available content-addressed in the cache).
        """
        seen = 0
        for rec in self.journal.iter_records():
            job_id = rec.get("job_id")
            if not isinstance(job_id, str):
                continue
            event = rec.get("event")
            if event == "submitted":
                payload = rec.get("payload")
                digest = rec.get("digest")
                if not isinstance(payload, dict) or not isinstance(digest, str):
                    continue
                seen += 1
                job = Job(
                    id=job_id,
                    namespace=str(rec.get("namespace") or DEFAULT_NAMESPACE),
                    kind=str(rec.get("kind") or "profile"),
                    payload=payload,
                    digest=digest,
                    created_unix=float(rec.get("created_unix") or 0.0),
                )
                job.events.append(self._job_event(job, "queued"))
                self._jobs[job_id] = job
                self._order.append(job_id)
            elif event == "finished" and job_id in self._jobs:
                job = self._jobs[job_id]
                job.state = str(rec.get("status") or "done")
                job.cache_hit = bool(rec.get("cache_hit"))
                job.error = rec.get("error")  # type: ignore[assignment]
                job.finished_unix = rec.get("finished_unix")  # type: ignore[assignment]
                if job.state == "done":
                    result = rec.get("result")
                    if not isinstance(result, dict) and job.kind == "profile":
                        result = self.cache.get(job.digest)
                    if isinstance(result, dict):
                        job.result = result
                        job.events.append(
                            record("result", job_id=job.id, record=result)
                        )
                job.events.append(self._job_event(job, "finished"))
        for job_id in self._order:
            job = self._jobs[job_id]
            if not job.terminal:
                job.resumed = True
                self.resumed += 1
                self._queue.put(job_id)
        # Continue the id sequence past everything journaled so restarted
        # daemons never mint a colliding job id.
        self._seq = itertools.count(seen + 1)

    # ------------------------------------------------------------------ #
    # lookup / listing / streaming
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        """The job for ``job_id`` (raises :class:`ReproError` when unknown)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id!r}")
        return job

    def jobs(self, namespace: Optional[str] = None) -> list[Job]:
        """All jobs in submission order, optionally filtered by namespace."""
        with self._cond:
            out = [self._jobs[jid] for jid in self._order]
        if namespace is not None:
            out = [j for j in out if j.namespace == namespace]
        return out

    def stream(
        self, job_id: str, from_index: int = 0, timeout: Optional[float] = None
    ) -> Iterator[dict[str, object]]:
        """Yield a job's protocol records from ``from_index``, then follow.

        Replays everything already accumulated, then blocks for new records
        until the job reaches a terminal state (or ``timeout`` elapses /
        the manager shuts down).  A reconnecting client passes the count of
        records it already consumed as ``from_index`` and loses nothing.
        """
        job = self.get(job_id)
        index = max(0, int(from_index))
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                while (
                    index >= len(job.events)
                    and not job.terminal
                    and not self._closed
                ):
                    remaining = _STREAM_POLL_S
                    if deadline is not None:
                        remaining = min(remaining, deadline - time.monotonic())
                        if remaining <= 0:
                            return
                    self._cond.wait(remaining)
                batch = job.events[index:]
            for rec in batch:
                yield rec
            index += len(batch)
            with self._cond:
                if (job.terminal or self._closed) and index >= len(job.events):
                    return

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: str) -> Job:
        """Request cancellation: queued jobs cancel immediately, running
        jobs transition to ``cancelling`` and stop at the next safe point
        (for campaign jobs, the next grid-cell boundary)."""
        job = self.get(job_id)
        with self._cond:
            if job.terminal:
                return job
            job.cancel_requested = True
            if job.state == "queued":
                self._finish_locked(job, "cancelled")
            elif job.state == "running":
                job.state = "cancelling"
                self._emit_locked(job, self._job_event(job, "cancelling"))
        _active_telemetry().counter("serve.jobs_cancelled").inc()
        return job

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            if self._closed:
                # Shutting down: leave the job queued-in-journal (no terminal
                # record) so the next daemon start re-enqueues it.
                continue
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                continue  # cancelled while queued, or stale after recovery
            try:
                self._run_job(job)
            except BaseException as error:  # pragma: no cover - last resort
                with self._cond:
                    if not job.terminal:
                        job.error = f"{type(error).__name__}: {error}"
                        self._finish_locked(job, "failed")

    def _run_job(self, job: Job) -> None:
        telemetry = _active_telemetry()
        with self._cond:
            if job.terminal:
                return
            job.state = "running"
            job.started_unix = round(time.time(), 6)
            self._emit_locked(job, self._job_event(job, "started"))
        with telemetry.span(
            "serve.job", kind=job.kind, namespace=job.namespace, digest=job.digest
        ):
            try:
                if job.kind == "campaign":
                    self._run_campaign(job)
                else:
                    self._run_profile(job)
            except ReproError as error:
                self._fail(job, str(error))
            except Exception as error:
                self._fail(job, f"{type(error).__name__}: {error}")

    def _run_profile(self, job: Job) -> None:
        from repro.api.runner import execute_payload

        telemetry = _active_telemetry()
        result = self.cache.get(job.digest)
        cache_hit = result is not None
        if result is None:
            result = execute_payload(job.payload)
            self.cache.put(job.digest, result)
            with self._cond:
                self.executed += 1
            telemetry.counter("serve.simulations").inc()
        else:
            with self._cond:
                self.cache_hits += 1
            telemetry.counter("serve.cache_hits").inc()
        with self._cond:
            if job.cancel_requested:
                # The simulation (if any) still happened and its record is
                # cached for the next asker; the *job* honours the cancel.
                self._finish_locked(job, "cancelled")
                return
            job.cache_hit = cache_hit
            job.result = result
            self._emit_locked(job, record("result", job_id=job.id, record=result))
            self._finish_locked(job, "done", result=None if not cache_hit else None)

    def _run_campaign(self, job: Job) -> None:
        from repro.api.runner import execute_payload

        telemetry = _active_telemetry()
        campaign = CampaignSpec.from_dict(job.payload)
        cells = campaign.expand()
        total = len(cells)
        outcomes: list[dict[str, object]] = []
        executed = cached = failed = 0
        for index, cell in enumerate(cells):
            with self._cond:
                if job.cancel_requested:
                    self._finish_locked(job, "cancelled")
                    return
            digest = cell.digest(self.version)
            cell_record = self.cache.get(digest)
            cache_hit = cell_record is not None
            status = "ok"
            error: Optional[str] = None
            if cell_record is None:
                try:
                    cell_record = execute_payload(cell.to_dict())
                    self.cache.put(digest, cell_record)
                    executed += 1
                    with self._cond:
                        self.executed += 1
                    telemetry.counter("serve.simulations").inc()
                except Exception as cell_error:
                    # Cell isolation, campaign-scheduler style: one bad cell
                    # is recorded and the grid keeps going.
                    status = "failed"
                    error = f"{type(cell_error).__name__}: {cell_error}"
                    failed += 1
            else:
                cached += 1
                with self._cond:
                    self.cache_hits += 1
                telemetry.counter("serve.cache_hits").inc()
            outcome: dict[str, object] = {
                "label": cell.label(),
                "digest": digest,
                "status": status,
                "cache_hit": cache_hit,
            }
            if error is not None:
                outcome["error"] = error
            outcomes.append(outcome)
            with self._cond:
                self._emit_locked(job, record(
                    "progress",
                    job_id=job.id,
                    index=index,
                    total=total,
                    **outcome,
                ))
        # Per-cell reports stay content-addressed in the cache — the result
        # lists their digests so a client fetches exactly what it wants via
        # GET /v1/cache/<digest> instead of one giant payload.
        result = {
            "campaign": campaign.name,
            "total": total,
            "executed": executed,
            "cached": cached,
            "failed": failed,
            "cells": outcomes,
        }
        with self._cond:
            if job.cancel_requested:
                self._finish_locked(job, "cancelled")
                return
            job.cache_hit = total > 0 and cached == total
            job.result = result
            self._emit_locked(job, record("result", job_id=job.id, record=result))
            self._finish_locked(job, "done", result=result)

    def _fail(self, job: Job, error: str) -> None:
        with self._cond:
            if job.terminal:
                return
            job.error = error
            if job.cancel_requested:
                self._finish_locked(job, "cancelled")
            else:
                self._finish_locked(job, "failed")

    # ------------------------------------------------------------------ #
    # event plumbing (call with self._cond held)
    # ------------------------------------------------------------------ #
    def _job_event(self, job: Job, event: str) -> dict[str, object]:
        return record(
            "job",
            event=event,
            job_id=job.id,
            namespace=job.namespace,
            kind=job.kind,
            state=job.state,
            digest=job.digest,
            cache_hit=job.cache_hit,
            error=job.error,
        )

    def _emit_locked(self, job: Job, rec: dict[str, object]) -> None:
        job.events.append(rec)
        self._cond.notify_all()

    def _finish_locked(
        self, job: Job, state: str, result: Optional[dict[str, object]] = None
    ) -> None:
        job.state = state
        job.finished_unix = round(time.time(), 6)
        terminal_record: dict[str, object] = {
            "event": "finished",
            "job_id": job.id,
            "status": state,
            "cache_hit": job.cache_hit,
            "error": job.error,
            "finished_unix": job.finished_unix,
        }
        # Campaign results are small (summary + cell digests) and are not
        # individually cached, so they persist in the journal; profile
        # results are recovered from the content-addressed cache instead.
        if result is not None and job.kind == "campaign":
            terminal_record["result"] = result
        try:
            self.journal.append(terminal_record)
        except Exception:
            # A journal append failing (disk full, injected fault) must not
            # take the job down with it — the in-memory outcome stands, the
            # job merely resumes redundantly after a restart.
            _active_telemetry().counter("serve.journal_errors").inc()
        self._emit_locked(job, self._job_event(job, "finished"))
        _active_telemetry().counter("serve.jobs_finished").inc()

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """JSON-native counters for ``/v1/healthz``."""
        with self._cond:
            by_state: dict[str, int] = {}
            by_namespace: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
                by_namespace[job.namespace] = by_namespace.get(job.namespace, 0) + 1
            return {
                "jobs": len(self._jobs),
                "by_state": dict(sorted(by_state.items())),
                "by_namespace": dict(sorted(by_namespace.items())),
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "resumed": self.resumed,
                "quota_rejections": self.quota_rejections,
                "workers": len(self._threads),
                "uptime_s": round(time.time() - self.started_unix, 3),
            }

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers; queued jobs stay journaled for the next start."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
