"""The JSONL wire protocol of the ``pasta serve`` daemon.

Every endpoint speaks newline-delimited JSON: one self-describing object per
line, flushed per line, so unary responses and long-lived streams share one
format and a slow reader applies backpressure through its socket instead of
forcing the server to buffer.  (The discipline follows the jn repo's
"JSON Lines everywhere" architecture cited in the ROADMAP.)

Record types
------------
``job``
    A job lifecycle record: ``event`` is ``queued`` / ``started`` /
    ``finished``, ``state`` is the job's current state
    (:data:`JOB_STATES`), plus identity fields (``job_id``, ``namespace``,
    ``kind``, ``digest``) and — on terminal records — ``status``,
    ``cache_hit`` and ``error``.
``progress``
    Per-cell progress of a running campaign job (``index`` / ``total`` /
    ``status`` / ``cache_hit`` / ``digest``), emitted as each grid cell
    finishes.
``result``
    The job's result payload.  For profile jobs, ``record`` is exactly what
    :func:`repro.api.runner.execute_payload` returns — which is why a remote
    run is byte-identical to a local one.  For campaign jobs, ``record``
    carries the merged summary plus per-cell digests (full per-cell reports
    stay content-addressed behind ``GET /v1/cache/<digest>``).
``error``
    A failure the *request* (not a job) ran into: ``code`` mirrors the HTTP
    status (400 bad spec, 404 unknown job, 429 quota exceeded), ``error`` is
    the human-readable reason.
``health``
    The ``/v1/healthz`` snapshot: daemon version, uptime and job counters.
``cache``
    Cache-endpoint acknowledgements (``stored`` / ``evicted``) and the
    ``GET /v1/cache`` stats snapshot.

Versioning: every record carries ``v`` (:data:`PROTOCOL_VERSION`); clients
reject records from a future major protocol.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from repro.core.serialization import stable_json_dumps

#: Wire protocol version stamped on every record.
PROTOCOL_VERSION = 1

#: Job lifecycle states, in order of progression.  ``done`` / ``failed`` /
#: ``cancelled`` are terminal; ``cancelling`` marks a running job whose
#: cancellation was requested but whose worker has not yet observed it.
JOB_STATES = ("queued", "running", "cancelling", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Submission kinds: one ProfileSpec, or a CampaignSpec grid.
JOB_KINDS = ("profile", "campaign")

#: Default namespace for clients that do not set ``X-Pasta-Namespace``.
DEFAULT_NAMESPACE = "default"

#: Request header carrying the client's namespace.
NAMESPACE_HEADER = "X-Pasta-Namespace"


def record(rtype: str, **fields: object) -> dict[str, object]:
    """One protocol record: ``{"type": rtype, "v": 1, "ts_unix": now, ...}``."""
    return {
        "type": rtype,
        "v": PROTOCOL_VERSION,
        "ts_unix": round(time.time(), 6),
        **fields,
    }


def error_record(code: int, message: str, **fields: object) -> dict[str, object]:
    """A request-level failure record mirroring an HTTP status code."""
    return record("error", code=int(code), error=str(message), **fields)


def encode_line(rec: Mapping[str, object]) -> bytes:
    """One wire line: canonical JSON plus the terminating newline."""
    return (stable_json_dumps(rec) + "\n").encode("utf-8")


def check_protocol(rec: Mapping[str, object]) -> None:
    """Reject records stamped by a future, incompatible protocol."""
    version = rec.get("v", PROTOCOL_VERSION)
    if isinstance(version, int) and version > PROTOCOL_VERSION:
        from repro.errors import ReproError

        raise ReproError(
            f"server speaks protocol v{version}, this client understands "
            f"v{PROTOCOL_VERSION}; upgrade the client"
        )


def validate_namespace(namespace: Optional[str]) -> str:
    """Normalise a namespace: non-empty, no path separators or whitespace."""
    from repro.errors import ReproError

    name = (namespace or DEFAULT_NAMESPACE).strip()
    if not name or any(ch in name for ch in "/\\ \t\n"):
        raise ReproError(
            f"namespace must be a non-empty token without separators, "
            f"got {namespace!r}"
        )
    return name
