"""Profiling as a service: the ``pasta serve`` daemon and its client.

This package turns the repo's one declarative run description —
:class:`~repro.api.spec.ProfileSpec` — into a network service.  Because every
run is already frozen, serializable data with a canonical content digest, and
because execution is already crash-safe and cache-backed (the campaign
fabric), the service layer is *only* queueing and auth-less multi-tenancy:

* :mod:`repro.serve.daemon` — a long-lived, stdlib-only HTTP daemon
  (``ThreadingHTTPServer``) accepting :class:`ProfileSpec` /
  :class:`~repro.campaign.spec.CampaignSpec` submissions and streaming every
  response as JSON Lines;
* :mod:`repro.serve.jobs` — the persistent worker pool behind it, executing
  submissions through the unified runner
  (:func:`repro.api.runner.execute_payload`), answering repeated digests from
  the shared content-addressed :class:`~repro.campaign.cache.ResultCache`,
  and journaling every job to a :class:`~repro.campaign.store.ResultStore`
  so a daemon restart (or ``kill -9``) re-enqueues queued work and never
  re-simulates finished digests;
* :mod:`repro.serve.client` — ``pasta.connect(url)``: the same fluent
  builder surface as ``pasta.profile(...)`` with ``.submit()`` as the
  terminal verb instead of ``.run()``, returning a :class:`JobHandle` whose
  ``.result()`` is byte-identical to a local run of the same spec;
* :mod:`repro.serve.protocol` — the JSONL record shapes every endpoint
  speaks (one self-describing JSON object per line, flushed per line so
  results and progress stream incrementally with socket backpressure).
"""

from repro.serve.client import (
    JobHandle,
    RemoteCampaignResult,
    RemoteProfileBuilder,
    RemoteRunResult,
    ServeClient,
    ServeError,
    connect,
)
from repro.serve.daemon import PastaDaemon
from repro.serve.jobs import JobManager, QuotaExceeded

__all__ = [
    "JobHandle",
    "JobManager",
    "PastaDaemon",
    "QuotaExceeded",
    "RemoteCampaignResult",
    "RemoteProfileBuilder",
    "RemoteRunResult",
    "ServeClient",
    "ServeError",
    "connect",
]
