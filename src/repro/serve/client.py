"""``pasta.connect(url)`` — the remote half of the one profiling API.

The redesign's contract: local and remote execution are *the same fluent
builder* with a different terminal verb.  Locally::

    reports = pasta.profile("gpt2").on("a100").train().with_tools("hotness").run().reports()

Remotely, swap ``pasta.profile`` for ``client.profile`` and ``.run()`` for
``.submit()``::

    client = pasta.connect("http://127.0.0.1:8080")
    handle = client.profile("gpt2").on("a100").train().with_tools("hotness").submit()
    reports = handle.result().reports()

and the two ``reports()`` dicts are byte-identical for the same spec,
because the daemon executes through the very same
:func:`repro.api.runner.execute_payload` a local run uses.

Everything here is stdlib (``urllib.request`` / ``http.client``); the wire
format is the JSONL protocol of :mod:`repro.serve.protocol`.  Stream reads
auto-resume: a :class:`JobHandle` tracks how many records it has consumed,
so a dropped connection reconnects with ``?from=<cursor>`` and the caller
never sees a duplicate or a gap.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Iterator, Mapping, Optional, Union

from repro.api.builder import ProfileBuilder
from repro.errors import ReproError
from repro.serve.protocol import (
    DEFAULT_NAMESPACE,
    NAMESPACE_HEADER,
    TERMINAL_STATES,
    check_protocol,
    validate_namespace,
)

#: Seconds between reconnect attempts when a stream drops.
_RETRY_BACKOFF_S = 0.2


class ServeError(ReproError):
    """A request the daemon rejected (or a transport failure talking to it).

    ``code`` carries the HTTP-ish status from the server's ``error`` record
    (400 bad spec, 404 unknown job, 429 quota, ...) or ``None`` for
    transport-level failures.
    """

    def __init__(self, message: str, *, code: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code


def _parse_line(line: bytes) -> dict[str, object]:
    try:
        rec = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"daemon sent a non-JSONL line: {error}") from None
    if not isinstance(rec, dict):
        raise ServeError(f"daemon sent a non-object record: {rec!r}")
    check_protocol(rec)
    return rec


def _raise_for_error(rec: Mapping[str, object]) -> None:
    if rec.get("type") == "error":
        code = rec.get("code")
        raise ServeError(
            str(rec.get("error") or "daemon error"),
            code=code if isinstance(code, int) else None,
        )


class ServeClient:
    """One connection's worth of client state: base URL + namespace.

    Entry points: :meth:`profile` (the fluent remote builder),
    :meth:`submit` (a ready spec or dict), :meth:`job` (re-attach to an
    existing job id), plus :meth:`jobs` / :meth:`health` /
    :meth:`cache_get` / :meth:`cache_put` for introspection and the
    HTTP-backed campaign cache.
    """

    def __init__(
        self,
        url: str,
        *,
        namespace: str = DEFAULT_NAMESPACE,
        timeout: float = 30.0,
        stream_timeout: float = 300.0,
        retries: int = 3,
    ) -> None:
        self.url = url.rstrip("/")
        if not self.url.startswith(("http://", "https://")):
            raise ServeError(
                f"serve URL must start with http:// or https://, got {url!r}"
            )
        self.namespace = validate_namespace(namespace)
        self.timeout = timeout
        self.stream_timeout = stream_timeout
        self.retries = retries

    def __repr__(self) -> str:
        return f"ServeClient({self.url!r}, namespace={self.namespace!r})"

    # -------------------------------------------------------------- #
    # transport
    # -------------------------------------------------------------- #
    def _open(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
        timeout: Optional[float] = None,
    ):
        data = None
        headers = {NAMESPACE_HEADER: self.namespace}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, method=method, headers=headers
        )
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as error:
            # The daemon explains failures as JSONL error records in the body.
            try:
                rec = _parse_line(error.read().splitlines()[0])
            except (ServeError, IndexError):
                raise ServeError(
                    f"{method} {path} failed: HTTP {error.code}", code=error.code
                ) from None
            _raise_for_error(rec)
            raise ServeError(
                f"{method} {path} failed: HTTP {error.code}", code=error.code
            ) from None
        except urllib.error.URLError as error:
            raise ServeError(
                f"cannot reach pasta daemon at {self.url}: {error.reason}"
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> list[dict[str, object]]:
        """One unary request → the response's parsed records."""
        with self._open(method, path, body) as response:
            raw = response.read()
        records = [_parse_line(line) for line in raw.splitlines() if line.strip()]
        for rec in records:
            _raise_for_error(rec)
        return records

    def _request_one(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
    ) -> dict[str, object]:
        records = self._request(method, path, body)
        if not records:
            raise ServeError(f"{method} {path}: daemon sent an empty response")
        return records[0]

    # -------------------------------------------------------------- #
    # the fluent surface
    # -------------------------------------------------------------- #
    def profile(self, model: str) -> "RemoteProfileBuilder":
        """Start a fluent profiling configuration that submits to the daemon.

        Identical surface to :func:`repro.pasta.profile` — the terminal verb
        is :meth:`RemoteProfileBuilder.submit` instead of ``.run()``.
        """
        return RemoteProfileBuilder(self, model)

    def submit(
        self,
        spec: Union[Mapping[str, object], object],
        *,
        kind: Optional[str] = None,
    ) -> "JobHandle":
        """Submit a ready spec: a ``ProfileSpec``/``CampaignSpec`` or dict."""
        payload: Mapping[str, object]
        if isinstance(spec, Mapping):
            payload = spec
        elif hasattr(spec, "to_dict"):
            payload = spec.to_dict()  # type: ignore[union-attr]
        else:
            raise ServeError(
                f"cannot submit {type(spec).__name__}: expected a spec dict, "
                f"ProfileSpec or CampaignSpec"
            )
        if kind is not None:
            payload = {"kind": kind, "spec": dict(payload)}
        rec = self._request_one("POST", "/v1/jobs", payload)
        return JobHandle(self, str(rec["job_id"]), status=rec)

    def job(self, job_id: str) -> "JobHandle":
        """Re-attach to an existing job by id (verifies it exists)."""
        return JobHandle(self, job_id, status=self.status(job_id))

    # -------------------------------------------------------------- #
    # job endpoints
    # -------------------------------------------------------------- #
    def status(self, job_id: str) -> dict[str, object]:
        return self._request_one("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, object]:
        return self._request_one("POST", f"/v1/jobs/{job_id}/cancel")

    def jobs(
        self,
        namespace: Optional[str] = None,
        *,
        all_namespaces: bool = False,
    ) -> list[dict[str, object]]:
        """Status records, scoped to this client's namespace by default.

        Pass ``namespace`` to inspect another tenant, or
        ``all_namespaces=True`` for every tenant's jobs.
        """
        path = "/v1/jobs"
        if all_namespaces:
            path += "?all=1"
        elif namespace is not None:
            path += f"?namespace={validate_namespace(namespace)}"
        return self._request("GET", path)

    def stream(
        self, job_id: str, from_index: int = 0, timeout: Optional[float] = None
    ) -> Iterator[dict[str, object]]:
        """Follow a job's records from ``from_index``, resuming on drops.

        Tracks a cursor of consumed records; a connection reset, timeout or
        torn read reconnects with ``?from=<cursor>`` (up to ``retries``
        times per gap), so the caller sees every record exactly once even
        across daemon hiccups mid-campaign.
        """
        cursor = max(0, int(from_index))
        attempts = 0
        read_timeout = self.stream_timeout if timeout is None else timeout
        while True:
            try:
                response = self._open(
                    "GET",
                    f"/v1/jobs/{job_id}/stream?from={cursor}",
                    timeout=read_timeout,
                )
            except ServeError:
                raise  # 404 / protocol errors don't improve with retries
            try:
                with response:
                    for line in response:
                        if not line.strip():
                            continue
                        rec = _parse_line(line)
                        _raise_for_error(rec)
                        cursor += 1
                        attempts = 0
                        yield rec
                return  # server closed the stream: job is terminal
            except (
                socket.timeout,
                TimeoutError,
                ConnectionResetError,
                BrokenPipeError,
                urllib.error.URLError,
                OSError,
            ) as error:
                attempts += 1
                if attempts > self.retries:
                    raise ServeError(
                        f"stream for {job_id} dropped {attempts} times "
                        f"(last: {error}); giving up at record {cursor}"
                    ) from None
                time.sleep(_RETRY_BACKOFF_S * attempts)

    # -------------------------------------------------------------- #
    # daemon endpoints
    # -------------------------------------------------------------- #
    def health(self) -> dict[str, object]:
        return self._request_one("GET", "/v1/healthz")

    def cache_get(self, digest: str) -> Optional[dict[str, object]]:
        """The cached result record for ``digest``, or ``None``."""
        try:
            return self._request_one("GET", f"/v1/cache/{digest}")
        except ServeError as error:
            if error.code == 404:
                return None
            raise

    def cache_put(self, digest: str, record: Mapping[str, object]) -> None:
        self._request_one("PUT", f"/v1/cache/{digest}", record)

    def cache_stats(self) -> dict[str, object]:
        return self._request_one("GET", "/v1/cache")


class RemoteProfileBuilder(ProfileBuilder):
    """The local fluent builder, re-terminated at the daemon.

    Every configuration method (``on`` / ``mode`` / ``with_tools`` /
    ``knob`` / ``parallel`` / ...) is inherited unchanged; only the terminal
    verbs differ: :meth:`submit` ships the spec, while :meth:`run` /
    :meth:`replay` / :meth:`record` raise with pointers to their remote
    equivalents (a remote daemon cannot write to client-side paths).
    """

    def __init__(self, client: ServeClient, model: str) -> None:
        super().__init__(model)
        self._client = client

    def submit(self) -> "JobHandle":
        """Ship the accumulated spec to the daemon; returns a handle."""
        return self._client.submit(self.build().to_dict(), kind="profile")

    def run(self):  # type: ignore[override]
        raise ServeError(
            "this builder came from pasta.connect(...): the terminal verb is "
            ".submit(), which returns a JobHandle (use .result() on it)"
        )

    def replay(self, trace: object):  # type: ignore[override]
        raise ServeError(
            "remote replay is not supported: traces live on the client; "
            "replay locally with pasta.profile(...).replay(trace)"
        )

    def record(self, path):  # type: ignore[override]
        raise ServeError(
            "record_to names a path on the daemon's host, which a remote "
            "client cannot read back; record traces with a local run instead"
        )


class JobHandle:
    """One submitted job: ``.status()`` / ``.stream()`` / ``.result()`` /
    ``.cancel()``, all addressed by the server-issued job id."""

    def __init__(
        self,
        client: ServeClient,
        job_id: str,
        status: Optional[dict[str, object]] = None,
    ) -> None:
        self.client = client
        self.id = job_id
        self._last_status = status
        self._result: Optional[Union[RemoteRunResult, RemoteCampaignResult]] = None

    def __repr__(self) -> str:
        state = (self._last_status or {}).get("state", "?")
        return f"JobHandle({self.id!r}, state={state!r})"

    def status(self) -> dict[str, object]:
        """The job's current status record (one round trip)."""
        self._last_status = self.client.status(self.id)
        return self._last_status

    @property
    def state(self) -> str:
        """Last observed state (refresh with :meth:`status`)."""
        if self._last_status is None:
            self.status()
        return str((self._last_status or {}).get("state", "queued"))

    def stream(self, from_index: int = 0) -> Iterator[dict[str, object]]:
        """Follow the job's protocol records (resumes on dropped connections)."""
        return self.client.stream(self.id, from_index)

    def cancel(self) -> dict[str, object]:
        self._last_status = self.client.cancel(self.id)
        return self._last_status

    def result(
        self, timeout: Optional[float] = None
    ) -> Union["RemoteRunResult", "RemoteCampaignResult"]:
        """Block until the job finishes; returns its result.

        Profile jobs yield a :class:`RemoteRunResult` whose ``reports()``
        equals a local run's; campaign jobs a :class:`RemoteCampaignResult`.
        Raises :class:`ServeError` when the job failed or was cancelled.
        """
        if self._result is not None:
            return self._result
        result_record: Optional[dict[str, object]] = None
        final: Optional[dict[str, object]] = None
        for rec in self.client.stream(self.id, 0, timeout=timeout):
            kind = rec.get("type")
            if kind == "result" and isinstance(rec.get("record"), dict):
                result_record = rec["record"]  # type: ignore[assignment]
            elif kind == "job" and rec.get("state") in TERMINAL_STATES:
                final = rec
        if final is None:
            raise ServeError(f"stream for {self.id} ended before a terminal state")
        state = str(final.get("state"))
        if state == "failed":
            raise ServeError(f"job {self.id} failed: {final.get('error')}")
        if state == "cancelled":
            raise ServeError(f"job {self.id} was cancelled")
        if result_record is None:
            raise ServeError(f"job {self.id} finished without a result record")
        status = self.status()
        if status.get("kind") == "campaign":
            self._result = RemoteCampaignResult(self, result_record, status)
        else:
            self._result = RemoteRunResult(self, result_record, status)
        return self._result


class RemoteRunResult:
    """A profile job's result: the exact record a local run produces.

    ``record`` is byte-for-byte what :func:`repro.api.runner.execute_payload`
    returned on the daemon (echoed job payload, summary, tool reports);
    :meth:`reports` matches ``ProfileResult.reports()`` of a local run of
    the same spec after JSON round-tripping.
    """

    def __init__(
        self,
        handle: JobHandle,
        record: dict[str, object],
        status: dict[str, object],
    ) -> None:
        self.handle = handle
        self.record = record
        self.status = status

    @property
    def cache_hit(self) -> bool:
        """True when the daemon answered from its content-addressed cache."""
        return bool(self.status.get("cache_hit"))

    @property
    def digest(self) -> str:
        return str(self.status.get("digest", ""))

    @property
    def summary(self) -> dict[str, object]:
        summary = self.record.get("summary")
        return summary if isinstance(summary, dict) else {}

    def reports(self) -> dict[str, dict[str, object]]:
        """Per-tool reports, same shape as a local ``.run().reports()``."""
        reports = self.record.get("reports")
        return reports if isinstance(reports, dict) else {}


class RemoteCampaignResult:
    """A campaign job's merged result: counts plus per-cell outcomes.

    Full per-cell reports stay content-addressed on the daemon; fetch any
    cell's complete record with :meth:`cell_record`.
    """

    def __init__(
        self,
        handle: JobHandle,
        record: dict[str, object],
        status: dict[str, object],
    ) -> None:
        self.handle = handle
        self.record = record
        self.status = status

    @property
    def total(self) -> int:
        return int(self.record.get("total", 0))  # type: ignore[arg-type]

    @property
    def executed(self) -> int:
        return int(self.record.get("executed", 0))  # type: ignore[arg-type]

    @property
    def cached(self) -> int:
        return int(self.record.get("cached", 0))  # type: ignore[arg-type]

    @property
    def failed(self) -> int:
        return int(self.record.get("failed", 0))  # type: ignore[arg-type]

    @property
    def cells(self) -> list[dict[str, object]]:
        cells = self.record.get("cells")
        return cells if isinstance(cells, list) else []

    def cell_record(self, digest: str) -> Optional[dict[str, object]]:
        """Fetch one cell's full result record from the daemon's cache."""
        return self.handle.client.cache_get(digest)


def connect(
    url: str,
    *,
    namespace: str = DEFAULT_NAMESPACE,
    timeout: float = 30.0,
) -> ServeClient:
    """Connect to a ``pasta serve`` daemon; returns a :class:`ServeClient`.

    The client's :meth:`~ServeClient.profile` mirrors ``pasta.profile``
    exactly — same builder, remote terminal verb::

        client = pasta.connect("http://127.0.0.1:8080")
        handle = client.profile("mlp").with_tools("hotness").submit()
        print(handle.result().reports())
    """
    return ServeClient(url, namespace=namespace, timeout=timeout)
