"""The ``pasta serve`` HTTP daemon — stdlib only, JSON Lines everywhere.

:class:`PastaDaemon` wraps a :class:`~repro.serve.jobs.JobManager` in a
``ThreadingHTTPServer`` (one thread per connection, so a slow stream reader
never blocks a submit).  Every response body is newline-delimited JSON from
:mod:`repro.serve.protocol`; unary responses are sent with a
``Content-Length`` (keep-alive friendly), streams use chunked transfer
encoding flushed per record so backpressure flows through the socket.

Endpoints (all under ``/v1``):

=====================================  ==============================================
``POST /v1/jobs``                      submit a spec (body: ``ProfileSpec`` /
                                       ``CampaignSpec`` dict or
                                       ``{"kind":..., "spec":...}``) → ``job`` record
``GET /v1/jobs``                       list jobs (``?namespace=`` filter) →
                                       one ``job`` record per line
``GET /v1/jobs/<id>``                  current status → ``job`` record
``GET /v1/jobs/<id>/stream``           follow lifecycle/progress/result records;
                                       ``?from=N`` resumes after N records
``POST /v1/jobs/<id>/cancel``          cancel queued or running → ``job`` record
``GET /v1/cache/<digest>``             fetch a cached result record (raw JSON)
``PUT /v1/cache/<digest>``             store a result record → ``cache`` record
``GET /v1/cache``                      cache stats snapshot → ``cache`` record
``GET /v1/healthz``                    liveness + job counters → ``health`` record
=====================================  ==============================================

Failures are ``error`` records whose ``code`` mirrors the HTTP status:
400 bad spec / malformed request, 404 unknown job or digest, 429 quota.

Multi-tenancy is auth-less: clients pick a namespace via the
``X-Pasta-Namespace`` header (or ``?namespace=``); quotas are enforced per
namespace by the job manager.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlsplit

import repro
from repro.errors import ReproError
from repro.obs.telemetry import active as _active_telemetry
from repro.serve.jobs import DEFAULT_QUOTA_INFLIGHT, JobManager, QuotaExceeded
from repro.serve.protocol import (
    NAMESPACE_HEADER,
    PROTOCOL_VERSION,
    encode_line,
    error_record,
    record,
)

#: Largest accepted request body (a campaign grid spec is well under this).
MAX_BODY_BYTES = 32 * 1024 * 1024

_DIGEST_RE = re.compile(r"^[0-9a-f]{8,64}$")

_JOBS_RE = re.compile(r"^/v1/jobs/([^/]+)(/stream|/cancel)?$")
_CACHE_RE = re.compile(r"^/v1/cache/([^/]+)$")


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the daemon's job manager."""

    protocol_version = "HTTP/1.1"
    server_version = f"pasta-serve/{repro.__version__}"

    # Set by _ServeServer for the benefit of type checkers.
    server: "_ServeServer"

    def log_message(self, format: str, *args: object) -> None:
        # Default handler logging writes to stderr per request; route it to
        # telemetry instead so the daemon is quiet unless observed.
        _active_telemetry().event(
            "serve.request", client=self.address_string(), line=format % args
        )

    # -------------------------------------------------------------- #
    # plumbing
    # -------------------------------------------------------------- #
    @property
    def manager(self) -> JobManager:
        return self.server.daemon.manager

    def _namespace(self, params: dict[str, list[str]]) -> Optional[str]:
        values = params.get("namespace")
        if values:
            return values[-1]
        return self.headers.get(NAMESPACE_HEADER)

    def _read_body(self) -> dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ReproError("request needs a JSON body with a Content-Length")
        if length > MAX_BODY_BYTES:
            raise ReproError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ReproError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    def _send_lines(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/jsonl; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_record(self, status: int, rec: dict[str, object]) -> None:
        self._send_lines(status, encode_line(rec))

    def _start_stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        # Flush per record: the reader sees each line as it happens, and a
        # slow reader throttles us through the socket instead of a buffer.
        self.wfile.flush()

    # -------------------------------------------------------------- #
    # dispatch
    # -------------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def _dispatch(self, method: str) -> None:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        params = parse_qs(parts.query)
        try:
            self._route(method, path, params)
        except QuotaExceeded as error:
            self._send_record(429, error_record(
                429, str(error), namespace=error.namespace, quota=error.quota
            ))
        except ReproError as error:
            code = 404 if str(error).startswith("unknown ") else 400
            self._send_record(code, error_record(code, str(error)))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-response
        except Exception as error:  # pragma: no cover - defensive
            try:
                self._send_record(500, error_record(
                    500, f"{type(error).__name__}: {error}"
                ))
            except OSError:
                self.close_connection = True

    def _route(self, method: str, path: str, params: dict[str, list[str]]) -> None:
        if path == "/v1/healthz" and method == "GET":
            return self._get_health()
        if path == "/v1/jobs":
            if method == "POST":
                return self._post_job(params)
            if method == "GET":
                return self._list_jobs(params)
        match = _JOBS_RE.match(path)
        if match is not None:
            job_id, tail = match.group(1), match.group(2)
            if tail is None and method == "GET":
                return self._get_job(job_id)
            if tail == "/stream" and method == "GET":
                return self._stream_job(job_id, params)
            if tail == "/cancel" and method == "POST":
                return self._cancel_job(job_id)
        if path == "/v1/cache" and method == "GET":
            return self._get_cache_stats()
        match = _CACHE_RE.match(path)
        if match is not None:
            if method == "GET":
                return self._get_cache(match.group(1))
            if method == "PUT":
                return self._put_cache(match.group(1))
        self._send_record(404, error_record(
            404, f"no route for {method} {path}",
        ))

    # -------------------------------------------------------------- #
    # handlers
    # -------------------------------------------------------------- #
    def _get_health(self) -> None:
        self._send_record(200, record(
            "health",
            status="ok",
            version=repro.__version__,
            protocol=PROTOCOL_VERSION,
            url=self.server.daemon.url,
            **self.manager.stats(),
        ))

    def _post_job(self, params: dict[str, list[str]]) -> None:
        body = self._read_body()
        namespace = self._namespace(params)
        job = self.manager.submit(
            body, namespace=namespace if namespace is not None else "default"
        )
        self._send_record(202, job.status_record())

    def _list_jobs(self, params: dict[str, list[str]]) -> None:
        # Default scope is the caller's own namespace (header or param);
        # ``?all=1`` lists every tenant's jobs (auth-less, like the rest).
        if params.get("all", ["0"])[-1] not in ("0", "", "false"):
            namespace = None
        else:
            namespace = self._namespace(params)
        jobs = self.manager.jobs(namespace=namespace)
        body = b"".join(encode_line(job.status_record()) for job in jobs)
        self._send_lines(200, body)

    def _get_job(self, job_id: str) -> None:
        self._send_record(200, self.manager.get(job_id).status_record())

    def _cancel_job(self, job_id: str) -> None:
        self._send_record(200, self.manager.cancel(job_id).status_record())

    def _stream_job(self, job_id: str, params: dict[str, list[str]]) -> None:
        try:
            from_index = int(params.get("from", ["0"])[-1])
        except ValueError:
            raise ReproError("'from' must be an integer record index") from None
        stream = self.manager.stream(job_id, from_index)  # 404s before headers
        self.manager.get(job_id)
        self._start_stream()
        try:
            for rec in stream:
                self._write_chunk(encode_line(rec))
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _get_cache_stats(self) -> None:
        self._send_record(200, record(
            "cache",
            event="stats",
            stats=self.manager.cache.stats.as_dict(),
            root=str(self.manager.cache.root),
        ))

    def _check_digest(self, digest: str) -> str:
        if not _DIGEST_RE.match(digest):
            raise ReproError(
                f"digest must be lowercase hex (8-64 chars), got {digest!r}"
            )
        return digest

    def _get_cache(self, digest: str) -> None:
        rec = self.manager.cache.get(self._check_digest(digest))
        if rec is None:
            self._send_record(404, error_record(
                404, f"unknown digest {digest!r}", digest=digest
            ))
            return
        # The raw cached record, not an envelope: the HTTP cache backend's
        # get() must round-trip byte-identically with the file store's.
        self._send_lines(200, encode_line(rec))

    def _put_cache(self, digest: str) -> None:
        body = self._read_body()
        self.manager.cache.put(self._check_digest(digest), body)
        self._send_record(200, record("cache", event="stored", digest=digest))


class _ServeServer(ThreadingHTTPServer):
    daemon_threads = True  # connection threads die with the process
    allow_reuse_address = True
    # The stdlib default listen backlog (5) drops connections under many
    # concurrent clients reconnecting per request; SYNs beyond the backlog
    # surface as resets under load.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], daemon: "PastaDaemon") -> None:
        super().__init__(address, _ServeHandler)
        self.daemon = daemon


class PastaDaemon:
    """The profiling-as-a-service daemon: HTTP front, worker pool back.

    ``port=0`` binds an ephemeral port; read :attr:`url` (or :attr:`port`)
    after construction.  Use as a context manager, or call :meth:`start` /
    :meth:`close` explicitly; :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        quota_inflight: Optional[int] = DEFAULT_QUOTA_INFLIGHT,
        quota_total: Optional[int] = None,
        fsync: bool = False,
    ) -> None:
        self.manager = JobManager(
            data_dir,
            workers=workers,
            quota_inflight=quota_inflight,
            quota_total=quota_total,
            fsync=fsync,
        )
        self._server = _ServeServer((host, port), self)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        _active_telemetry().event(
            "serve.bound", url=self.url, workers=workers,
            resumed=self.manager.resumed,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PastaDaemon":
        """Serve on a background thread and return immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="pasta-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or Ctrl-C)."""
        self._server.serve_forever()

    def close(self) -> None:
        """Stop accepting requests and shut the worker pool down.

        Queued jobs stay journaled and resume on the next daemon start.
        """
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.manager.close()

    def __enter__(self) -> "PastaDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
