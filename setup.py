"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in
environments without the ``wheel`` package (legacy ``setup.py develop`` /
``pip install -e .`` fallback).
"""

from setuptools import setup

setup()
