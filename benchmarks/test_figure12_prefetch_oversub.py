"""Figure 12: object- vs tensor-level UVM prefetch under 3x memory oversubscription.

Under oversubscription, aggressive object-level prefetching migrates tensors
that are never accessed, evicts hot pages and thrashes; tensor-level
prefetching stays close to the no-prefetch baseline.
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.gpusim.device import A100, RTX3060
from repro.tools import UvmPrefetchExecutor
from repro.workloads import record_uvm_schedule

DEVICES = {"3060": RTX3060, "A100": A100}
OVERSUBSCRIPTION_FACTOR = 3.0


@pytest.fixture(scope="module")
def schedules(paper_models):
    return {
        name: record_uvm_schedule(name, device="rtx3060", batch_size=bench_batch_size())[0]
        for name in paper_models
    }


def test_figure12_prefetch_oversubscription(benchmark, schedules):
    def evaluate():
        results = {}
        for device_tag, spec in DEVICES.items():
            executor = UvmPrefetchExecutor(spec, oversubscription_factor=OVERSUBSCRIPTION_FACTOR)
            for name, schedule in schedules.items():
                results[(device_tag, name)] = executor.normalized_times(schedule)
        return results

    results = benchmark(evaluate)

    print_header(f"Figure 12 — execution time normalised to no prefetch "
                 f"(oversubscription factor {OVERSUBSCRIPTION_FACTOR:.0f})")
    print_row("model", "device", "object-level", "tensor-level", widths=(10, 8, 14, 14))
    object_slowdowns = {tag: [] for tag in DEVICES}
    tensor_norms = {tag: [] for tag in DEVICES}
    for (device_tag, name), norm in results.items():
        print_row(model_label(name), device_tag, norm["object_level"], norm["tensor_level"],
                  widths=(10, 8, 14, 14))
        object_slowdowns[device_tag].append(norm["object_level"])
        tensor_norms[device_tag].append(norm["tensor_level"])
    for device_tag in DEVICES:
        avg_obj = sum(object_slowdowns[device_tag]) / len(object_slowdowns[device_tag])
        avg_ten = sum(tensor_norms[device_tag]) / len(tensor_norms[device_tag])
        print(f"\n{device_tag}: average object-level {avg_obj:.2f}x, tensor-level {avg_ten:.2f}x "
              f"(paper: object-level slowdowns 2.35x on 3060, 2.91x on A100)")

    # Shape assertions: on average object-level prefetch is now a slowdown and
    # tensor-level stays close to the baseline; object-level is always the
    # worse of the two granularities.
    for device_tag in DEVICES:
        avg_obj = sum(object_slowdowns[device_tag]) / len(object_slowdowns[device_tag])
        avg_ten = sum(tensor_norms[device_tag]) / len(tensor_norms[device_tag])
        assert avg_obj > 1.0
        assert avg_ten < avg_obj
        assert avg_ten < 1.3
    for (device_tag, name), norm in results.items():
        assert norm["tensor_level"] <= norm["object_level"] * 1.05, (device_tag, name)
