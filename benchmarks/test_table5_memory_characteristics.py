"""Table V: memory footprint and working-set statistics of the six DNN models.

Regenerates the per-model kernel count, memory footprint, workload working set
and the min/average/median/90th-percentile per-kernel working sets, for both
inference and training, and checks the paper's headline shape: footprints are
a multiple of working sets.
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.tools import MemoryCharacteristicsTool
from repro import api

MiB = float(1024 * 1024)


def _characterise(model_name: str, mode: str) -> MemoryCharacteristicsTool:
    tool = MemoryCharacteristicsTool()
    api.run(model_name, device="a100", mode=mode, tools=[tool],
                 batch_size=bench_batch_size())
    return tool


@pytest.mark.parametrize("mode", ["inference", "train"])
def test_table5_memory_characteristics(benchmark, paper_models, mode):
    tools = {name: _characterise(name, mode) for name in paper_models}

    summaries = benchmark(lambda: {name: tool.summary() for name, tool in tools.items()})

    print_header(f"Table V — memory characteristics ({mode}), sizes in MB")
    print_row("model", "kernels", "footprint", "working set", "min WS", "avg WS",
              "median WS", "p90 WS", widths=(9, 9, 11, 12, 9, 9, 10, 9))
    ratios = []
    for name, summary in summaries.items():
        ratios.append(summary.memory_footprint_bytes / max(1, summary.working_set_bytes))
        print_row(
            model_label(name), summary.kernel_count,
            summary.memory_footprint_bytes / MiB, summary.working_set_bytes / MiB,
            summary.min_working_set_bytes / MiB, summary.avg_working_set_bytes / MiB,
            summary.median_working_set_bytes / MiB, summary.p90_working_set_bytes / MiB,
            widths=(9, 9, 11, 12, 9, 9, 10, 9),
        )
    avg_ratio = sum(ratios) / len(ratios)
    print(f"\naverage footprint / working-set ratio: {avg_ratio:.2f}x "
          f"(paper: 2.22x inference, 3.79x training)")

    for name, summary in summaries.items():
        assert summary.memory_footprint_bytes > summary.working_set_bytes > 0, name
        assert summary.median_working_set_bytes <= summary.p90_working_set_bytes
    assert avg_ratio > 1.5
