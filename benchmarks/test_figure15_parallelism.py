"""Figure 15: per-GPU memory usage of Megatron GPT-2 345M under DP, TP and PP.

Runs one training iteration of the Megatron GPT-2 model on two simulated A100s
under data, tensor and pipeline parallelism and compares the per-GPU memory
timelines: DP and TP are symmetric, TP's peak is roughly half of DP's, and PP
is asymmetric with the last stage (final layers + LM head) carrying the tail.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_header, print_row
from repro.dlframework.models.megatron import MegatronConfig
from repro.dlframework.parallel import (
    DataParallelRunner,
    PipelineParallelRunner,
    TensorParallelRunner,
)
from repro.gpusim.device import A100
from repro.gpusim.multigpu import DeviceSet

MiB = float(1024 * 1024)

#: Full Megatron GPT-2 345M configuration, reduced unless PASTA_BENCH_FULL=1.
def _config() -> MegatronConfig:
    if os.environ.get("PASTA_BENCH_FULL"):
        return MegatronConfig()
    return MegatronConfig(vocab_size=8192, hidden=512, num_layers=8, num_heads=8,
                          seq_length=256, batch_size=2)


@pytest.fixture(scope="module")
def parallel_results():
    config = _config()
    return {
        "DP": DataParallelRunner(DeviceSet([A100, A100]), config).run_iteration(),
        "TP": TensorParallelRunner(DeviceSet([A100, A100]), config).run_iteration(),
        "PP": PipelineParallelRunner(DeviceSet([A100, A100]), config).run_iteration(),
    }


def test_figure15_parallelism_memory_usage(benchmark, parallel_results):
    def summarise():
        return {
            strategy: {
                "peaks": result.peak_bytes(),
                "events": result.allocation_event_counts(),
            }
            for strategy, result in parallel_results.items()
        }

    summary = benchmark(summarise)

    print_header("Figure 15 — Megatron GPT-2 per-GPU memory usage (one training iteration)")
    print_row("strategy", "GPU0 peak MB", "GPU1 peak MB", "GPU0 events", "GPU1 events",
              widths=(9, 13, 13, 12, 12))
    for strategy, data in summary.items():
        peaks, events = data["peaks"], data["events"]
        print_row(strategy, peaks[0] / MiB, peaks[1] / MiB, events[0], events[1],
                  widths=(9, 13, 13, 12, 12))

    dp_peaks = summary["DP"]["peaks"]
    tp_peaks = summary["TP"]["peaks"]
    pp_peaks = summary["PP"]["peaks"]
    print(f"\nTP peak / DP peak = {max(tp_peaks) / max(dp_peaks):.2f} "
          f"(paper: ~0.5, consistent with model sharding)")
    print(f"PP asymmetry (GPU1/GPU0) = {pp_peaks[1] / max(1, pp_peaks[0]):.2f} "
          f"(last stage carries the LM head and logits)")

    # DP and TP are symmetric across the two GPUs.
    assert dp_peaks[0] == pytest.approx(dp_peaks[1], rel=0.02)
    assert tp_peaks[0] == pytest.approx(tp_peaks[1], rel=0.02)
    # TP's peak is clearly below DP's.
    assert max(tp_peaks) < 0.8 * max(dp_peaks)
    # PP is asymmetric with the heavier last stage.
    assert pp_peaks[1] > pp_peaks[0]
