"""Figure 15: per-GPU memory usage of Megatron GPT-2 345M under DP, TP and PP.

Runs one training iteration of the Megatron GPT-2 model on two simulated A100s
under data, tensor and pipeline parallelism — through the unified
:class:`~repro.api.spec.ProfileSpec` facade, exactly as ``pasta profile
megatron-gpt2-345m --parallel tp`` would — and compares the per-GPU memory
timelines from the aggregated cross-rank report: DP and TP are symmetric, TP's
peak is roughly half of DP's, and PP is asymmetric with the last stage (final
layers + LM head) carrying the tail.
"""

from __future__ import annotations

import os

import pytest

from conftest import print_header, print_row
from repro import pasta
from repro.core.registry import REGISTRY
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2

MiB = float(1024 * 1024)

#: Registry name of the (possibly reduced) benchmark model.
BENCH_MODEL = "megatron_gpt2_345m_fig15"


def _config() -> MegatronConfig:
    """Full Megatron GPT-2 345M configuration, reduced unless PASTA_BENCH_FULL=1."""
    if os.environ.get("PASTA_BENCH_FULL"):
        return MegatronConfig()
    return MegatronConfig(vocab_size=8192, hidden=512, num_layers=8, num_heads=8,
                          seq_length=256, batch_size=2)


@pytest.fixture(scope="module")
def parallel_results():
    config = _config()
    REGISTRY.register("models", BENCH_MODEL, lambda: MegatronGpt2(config),
                      overwrite=True)
    try:
        yield {
            label: (pasta.profile(BENCH_MODEL)
                    .parallel(strategy, world_size=2)
                    .run())
            for label, strategy in (("DP", "dp"), ("TP", "tp"), ("PP", "pp"))
        }
    finally:
        REGISTRY.namespace("models").unregister(BENCH_MODEL)


def test_figure15_parallelism_memory_usage(benchmark, parallel_results):
    def summarise():
        return {
            label: result.reports()["cross_rank"]
            for label, result in parallel_results.items()
        }

    summary = benchmark(summarise)

    print_header("Figure 15 — Megatron GPT-2 per-GPU memory usage (one training iteration)")
    print_row("strategy", "GPU0 peak MB", "GPU1 peak MB", "GPU0 events", "GPU1 events",
              widths=(9, 13, 13, 12, 12))
    for label, cross in summary.items():
        peaks = cross["peak_bytes_per_rank"]
        events = cross["allocation_events_per_rank"]
        print_row(label, peaks[0] / MiB, peaks[1] / MiB, events[0], events[1],
                  widths=(9, 13, 13, 12, 12))

    dp_peaks = summary["DP"]["peak_bytes_per_rank"]
    tp_peaks = summary["TP"]["peak_bytes_per_rank"]
    pp_peaks = summary["PP"]["peak_bytes_per_rank"]
    print(f"\nTP peak / DP peak = {max(tp_peaks) / max(dp_peaks):.2f} "
          f"(paper: ~0.5, consistent with model sharding)")
    print(f"PP asymmetry (GPU1/GPU0) = {summary['PP']['last_over_first_peak']:.2f} "
          f"(last stage carries the LM head and logits)")

    # DP and TP are symmetric across the two GPUs.
    assert dp_peaks[0] == pytest.approx(dp_peaks[1], rel=0.02)
    assert tp_peaks[0] == pytest.approx(tp_peaks[1], rel=0.02)
    assert summary["DP"]["peak_symmetry"] == pytest.approx(1.0, rel=0.02)
    # TP's peak is clearly below DP's.
    assert max(tp_peaks) < 0.8 * max(dp_peaks)
    # PP is asymmetric with the heavier last stage.
    assert pp_peaks[1] > pp_peaks[0]
    assert summary["PP"]["last_over_first_peak"] > 1.0
