"""Figure 13: time-series memory-access hotness of BERT inference.

Builds the 2 MB-block x time-window hotness matrix for BERT inference,
identifies long-lived hot blocks (prefetch/pin candidates) and short-lived
bursty blocks (proactive-eviction candidates).
"""

from __future__ import annotations

import numpy as np

from conftest import bench_batch_size, print_header
from repro.tools import TimeSeriesHotnessTool
from repro import api


def test_figure13_bert_hotness(benchmark):
    hotness = TimeSeriesHotnessTool(kernels_per_window=10)
    api.run("bert", device="a100", mode="inference", tools=[hotness],
                 batch_size=bench_batch_size())

    blocks, matrix = benchmark(hotness.hotness_matrix)

    classes = hotness.classify_blocks()
    by_kind: dict[str, int] = {}
    for c in classes:
        by_kind[c.kind] = by_kind.get(c.kind, 0) + 1

    print_header("Figure 13 — memory access hotness of BERT inference over time")
    print(f"2 MB blocks observed: {len(blocks)}, time windows: {hotness.window_count}")
    print(f"block classification: {by_kind}")
    print(f"prefetch/pin candidates (long-lived hot): {len(hotness.prefetch_candidates())}")
    print(f"proactive-eviction candidates (bursty): {len(hotness.eviction_candidates())}")
    # A compact textual rendering of the hotness heat map (top 10 hottest blocks).
    totals = matrix.sum(axis=1)
    order = np.argsort(-totals)[:10]
    print("\nhottest blocks (rows) over windows (columns), '#' = accessed:")
    for row in order:
        line = "".join("#" if matrix[row, w] > 0 else "." for w in range(matrix.shape[1]))
        print(f"  block {blocks[row]:>12}: {line}")

    assert matrix.shape == (len(blocks), hotness.window_count)
    assert len(blocks) > 10
    assert hotness.prefetch_candidates(), "expected long-lived hot blocks (parameters)"
    assert by_kind.get("long_lived_hot", 0) > 0
    assert by_kind.get("bursty", 0) + by_kind.get("intermittent", 0) > 0
