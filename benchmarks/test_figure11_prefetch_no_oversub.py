"""Figure 11: object- vs tensor-level UVM prefetch without memory oversubscription.

Both prefetch granularities should beat the no-prefetch baseline when device
memory is plentiful (the paper reports 26-39% average speedups).
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.gpusim.device import A100, RTX3060
from repro.tools import UvmPrefetchExecutor
from repro.workloads import record_uvm_schedule

DEVICES = {"3060": RTX3060, "A100": A100}


@pytest.fixture(scope="module")
def schedules(paper_models):
    return {
        name: record_uvm_schedule(name, device="rtx3060", batch_size=bench_batch_size())[0]
        for name in paper_models
    }


def test_figure11_prefetch_no_oversubscription(benchmark, schedules):
    def evaluate():
        results = {}
        for device_tag, spec in DEVICES.items():
            executor = UvmPrefetchExecutor(spec, oversubscription_factor=1.0)
            for name, schedule in schedules.items():
                results[(device_tag, name)] = executor.normalized_times(schedule)
        return results

    results = benchmark(evaluate)

    print_header("Figure 11 — execution time normalised to no prefetch (no oversubscription)")
    print_row("model", "device", "object-level", "tensor-level", widths=(10, 8, 14, 14))
    object_norm, tensor_norm = [], []
    for (device_tag, name), norm in results.items():
        print_row(model_label(name), device_tag, norm["object_level"], norm["tensor_level"],
                  widths=(10, 8, 14, 14))
        object_norm.append(norm["object_level"])
        tensor_norm.append(norm["tensor_level"])
    print(f"\naverage speedup: object-level {1 - sum(object_norm) / len(object_norm):.0%}, "
          f"tensor-level {1 - sum(tensor_norm) / len(tensor_norm):.0%} "
          f"(paper: 30-39% object, 26-30% tensor)")

    assert sum(object_norm) / len(object_norm) < 1.0
    assert sum(tensor_norm) / len(tensor_norm) < 1.0
    for (device_tag, name), norm in results.items():
        assert norm["object_level"] < 1.05, (device_tag, name)
        assert norm["tensor_level"] < 1.05, (device_tag, name)
