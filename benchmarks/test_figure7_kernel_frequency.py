"""Figure 7: kernel invocation frequency distribution across model runs.

Regenerates the paper's observation that only a small subset of kernels is
invoked heavily during inference and training of the six evaluation models.
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.tools import KernelFrequencyTool
from repro import api


def _collect(model_name: str, mode: str) -> KernelFrequencyTool:
    tool = KernelFrequencyTool()
    api.run(model_name, device="a100", mode=mode, tools=[tool],
                 batch_size=bench_batch_size())
    return tool


@pytest.mark.parametrize("mode", ["inference", "train"])
def test_figure7_kernel_frequency(benchmark, paper_models, mode):
    """Print the per-model top-kernel distribution and benchmark the analysis."""
    tools = {name: _collect(name, mode) for name in paper_models}

    def analyse():
        return {name: tool.top_kernels(5) for name, tool in tools.items()}

    top = benchmark(analyse)

    print_header(f"Figure 7 — kernel invocation frequency ({mode})")
    print_row("model", "launches", "distinct", "top-5 share", widths=(10, 12, 10, 12))
    for name, tool in tools.items():
        print_row(model_label(name), tool.total_launches, tool.distinct_kernels,
                  tool.concentration(5), widths=(10, 12, 10, 12))
        for entry in top[name][:3]:
            print(f"    {entry.invocations:6d}x  {entry.kernel_name}")

    for name, tool in tools.items():
        assert tool.total_launches > 20
        threshold = 0.5 if mode == "inference" else 0.4
        assert tool.concentration(5) > threshold, f"{name}: top kernels should dominate"
