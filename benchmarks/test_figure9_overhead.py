"""Figure 9: normalised overhead of the three analysis variants on A100 and RTX 3060.

Compares PASTA's GPU-resident collect-and-analyze (CS-GPU) against CPU-side
analysis with Compute Sanitizer (CS-CPU) and NVBit (NVBIT-CPU) instrumentation
for the memory-characterisation tool, per model and device.
"""

from __future__ import annotations

import math

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.gpusim.device import A100, RTX3060
from repro.tools import OverheadComparison, WorkloadProfile
from repro import api

DEVICES = {"A100": A100, "3060": RTX3060}


def _profile(model_name: str) -> WorkloadProfile:
    profile = WorkloadProfile()
    api.run(model_name, device="a100", tools=[profile], batch_size=bench_batch_size())
    return profile


@pytest.fixture(scope="module")
def workload_profiles(paper_models):
    return {name: _profile(name) for name in paper_models}


def test_figure9_overhead(benchmark, workload_profiles):
    comparison = OverheadComparison()

    def evaluate():
        rows = {}
        for device_tag, spec in DEVICES.items():
            for name, profile in workload_profiles.items():
                rows[(device_tag, name)] = comparison.evaluate(profile.launches, spec)
        return rows

    rows = benchmark(evaluate)

    print_header("Figure 9 — normalised overhead (log10, vs uninstrumented execution)")
    print_row("model", "variant", "A100", "3060", widths=(10, 12, 12, 12))
    for name in workload_profiles:
        for variant in ("CS-GPU", "CS-CPU", "NVBIT-CPU"):
            a100 = rows[("A100", name)][variant].normalized_overhead
            r3060 = rows[("3060", name)][variant].normalized_overhead
            print_row(model_label(name), variant, math.log10(max(a100, 1e-9)),
                      math.log10(max(r3060, 1e-9)), widths=(10, 12, 12, 12))

    geo_speedups = {}
    for device_tag, spec in DEVICES.items():
        cs, nvbit = [], []
        for name, profile in workload_profiles.items():
            speedups = comparison.speedup_of_gpu_analysis(profile.launches, spec)
            cs.append(speedups["CS-CPU"])
            nvbit.append(speedups["NVBIT-CPU"])
        geo_speedups[device_tag] = (
            math.exp(sum(math.log(v) for v in cs) / len(cs)),
            math.exp(sum(math.log(v) for v in nvbit) / len(nvbit)),
        )
    print("\nGeometric-mean speedup of CS-GPU over CPU-side analysis:")
    for device_tag, (cs, nvbit) in geo_speedups.items():
        print(f"  {device_tag}: {cs:.0f}x vs CS-CPU, {nvbit:.0f}x vs NVBIT-CPU "
              f"(paper: 941x/13006x on A100, 627x/7353x on RTX 3060)")

    # Shape assertions: ordering holds everywhere, speedups are orders of
    # magnitude, and the larger GPU benefits more.
    for key, variants in rows.items():
        assert (variants["CS-GPU"].normalized_overhead
                < variants["CS-CPU"].normalized_overhead
                < variants["NVBIT-CPU"].normalized_overhead), key
    assert geo_speedups["A100"][0] > 100
    assert geo_speedups["A100"][1] > geo_speedups["A100"][0]
    assert geo_speedups["A100"][0] > geo_speedups["3060"][0]
