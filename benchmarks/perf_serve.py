#!/usr/bin/env python
"""``pasta serve`` service-overhead harness (PR 10's acceptance instrument).

Boots an in-process daemon, pre-warms one tiny spec into its
content-addressed cache, then hammers it with concurrent clients each doing
full submit → stream → result round trips.  Because the spec is warm, every
request is answered from the cache — so the numbers measure the *service*
(HTTP + queueing + journal + streaming), not the simulator:

* ``submissions_per_second`` — sustained completed round trips / wall time;
* ``p50_ms`` / ``p99_ms``    — end-to-end submit-to-result latency.

Workloads run with 8 concurrent clients (the acceptance floor) and, in the
full selection, 16.  Results land in ``BENCH_serve.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_serve.py            # full run
    PYTHONPATH=src python benchmarks/perf_serve.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_serve.py --quick \\
        --check BENCH_serve.json             # fail on >3x regression

``--check`` compares each workload's wall time against the matching entry in
a previously written results file and exits non-zero when any workload is
more than ``--tolerance`` (default 3.0) times slower — the CI perf-smoke
gate.  (The tolerance is looser than the pipeline harness's because these
are millisecond-scale network round trips, noisier on shared runners.)
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.serve.client import connect
from repro.serve.daemon import PastaDaemon

#: The warmed spec every client resubmits: smallest model, one tool.
WARM_SPEC = {"model": "alexnet", "tools": ["hotness"], "iterations": 1}

#: name -> (clients, requests per client).  The acceptance criterion is
#: sustained throughput + p99 under >= 8 concurrent clients.
WORKLOADS: dict[str, tuple[int, int]] = {
    "warm_roundtrip_8c": (8, 25),
    "warm_roundtrip_16c": (16, 15),
}

QUICK_WORKLOADS: dict[str, tuple[int, int]] = {
    "warm_roundtrip_8c_quick": (8, 6),
}


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def run_one(name: str, clients: int, requests: int) -> dict[str, object]:
    """Benchmark one concurrency level; returns its result entry."""
    with tempfile.TemporaryDirectory(prefix="pasta-bench-serve-") as data_dir:
        with PastaDaemon(data_dir, workers=4).start() as daemon:
            # Warm the digest so every benchmarked request is a pure cache
            # hit: the numbers measure the service, not the simulator.
            warm = connect(daemon.url).submit(WARM_SPEC).result(timeout=300)
            assert warm.reports(), "warm-up run produced no reports"

            latencies: list[float] = []
            errors: list[str] = []
            lock = threading.Lock()

            def client_loop(index: int) -> None:
                # One namespace per client: quota accounting mirrors real
                # multi-tenant use instead of piling onto one tenant.
                client = connect(daemon.url, namespace=f"bench-{index}")
                for _ in range(requests):
                    started = time.perf_counter()
                    try:
                        result = client.submit(WARM_SPEC).result(timeout=60)
                        if not result.cache_hit:
                            raise AssertionError("expected a cache hit")
                    except Exception as error:  # noqa: BLE001 - recorded, not raised
                        with lock:
                            errors.append(f"{type(error).__name__}: {error}")
                        return
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)

            threads = [
                threading.Thread(target=client_loop, args=(i,), daemon=True)
                for i in range(clients)
            ]
            wall_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_started

    if errors:
        raise SystemExit(f"{name}: {len(errors)} client error(s); first: {errors[0]}")
    total = clients * requests
    if len(latencies) != total:
        raise SystemExit(f"{name}: completed {len(latencies)}/{total} requests")
    latencies.sort()
    entry = {
        "seconds": round(wall, 4),
        "clients": clients,
        "requests": total,
        "submissions_per_second": round(total / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 2),
    }
    print(f"  {name:>22}: {entry['submissions_per_second']:8.1f} sub/s   "
          f"(p50 {entry['p50_ms']:.1f} ms, p99 {entry['p99_ms']:.1f} ms, "
          f"{clients} clients x {requests} reqs in {wall:.2f} s)")
    return entry


def check_against(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Compare measured workloads against a baseline file; 0 = within budget."""
    baseline = json.loads(baseline_path.read_text())
    reference = baseline.get("workloads", {})
    failures = []
    for name, entry in results.items():
        base = reference.get(name)
        if not base:
            # A silently skipped workload would let the gate pass while
            # measuring nothing, so a missing baseline entry is a failure.
            print(f"  {name}: MISSING baseline entry in {baseline_path}")
            failures.append((name, None))
            continue
        ratio = entry["seconds"] / base["seconds"] if base["seconds"] else 0.0
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(f"  {name}: {entry['seconds']:.3f}s vs baseline "
              f"{base['seconds']:.3f}s  ({ratio:.2f}x)  {verdict}")
        if ratio > tolerance:
            failures.append((name, ratio))
    if failures:
        print(f"serve perf-smoke FAILED: {len(failures)} workload(s) regressed "
              f"more than {tolerance:.1f}x or had no baseline: "
              + ", ".join(f"{n} ({'no baseline' if r is None else f'{r:.2f}x'})"
                          for n, r in failures))
        return 1
    print("serve perf-smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the reduced CI workload only")
    parser.add_argument("--full", action="store_true",
                        help="run both the quick and the full workloads")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results JSON here (default: "
                             "BENCH_serve.json next to the repo root; "
                             "omitted entries from previous runs are kept)")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a baseline results file and exit "
                             "non-zero on regression instead of overwriting it")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slowdown factor for --check (default 3.0)")
    args = parser.parse_args(argv)

    if args.full:
        selected = {**QUICK_WORKLOADS, **WORKLOADS}
        selection = "quick+full"
    elif args.quick:
        selected = dict(QUICK_WORKLOADS)
        selection = "quick"
    else:
        selected = dict(WORKLOADS)
        selection = "full"

    print(f"serve benchmark ({selection}, repro {repro.__version__})")
    results = {name: run_one(name, clients, requests)
               for name, (clients, requests) in selected.items()}

    if args.check is not None:
        # With an explicit --output, also persist what was measured — CI
        # uploads it as a workflow artifact so BENCH trajectories survive
        # across runs even though the gate never rewrites the baseline.
        if args.output is not None:
            measured = {
                "schema": 1,
                "repro_version": repro.__version__,
                "selection": selection,
                "baseline": str(args.check),
                "workloads": results,
            }
            args.output.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
            print(f"wrote measured results to {args.output}")
        return check_against(results, args.check, args.tolerance)

    output = args.output
    if output is None:
        output = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    document: dict = {}
    if output.exists():
        try:
            document = json.loads(output.read_text())
        except json.JSONDecodeError:
            document = {}
    document.setdefault("schema", 1)
    document["repro_version"] = repro.__version__
    workloads = document.setdefault("workloads", {})
    workloads.update(results)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
