"""Figure 10: breakdown of profiling time into execution / collection / transfer / analysis.

For each model, device and analysis variant, prints the fraction of total
profiled time spent in each component.  The expected shape: CPU-side variants
are dominated by (single-threaded) trace analysis; the GPU-resident variant is
dominated by fused collection+analysis, whose absolute time is far smaller
(Figure 9).
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, model_label, print_header, print_row
from repro.gpusim.device import A100, RTX3060
from repro.tools import OverheadComparison, WorkloadProfile
from repro import api

DEVICES = {"A100": A100, "3060": RTX3060}


@pytest.fixture(scope="module")
def workload_profiles(paper_models):
    profiles = {}
    for name in paper_models:
        profile = WorkloadProfile()
        api.run(name, device="a100", tools=[profile], batch_size=bench_batch_size())
        profiles[name] = profile
    return profiles


def test_figure10_breakdown(benchmark, workload_profiles):
    comparison = OverheadComparison()

    def evaluate():
        out = {}
        for device_tag, spec in DEVICES.items():
            for name, profile in workload_profiles.items():
                rows = comparison.evaluate(profile.launches, spec)
                out[(device_tag, name)] = {
                    variant: row.fractions for variant, row in rows.items()
                }
        return out

    fractions = benchmark(evaluate)

    print_header("Figure 10 — breakdown of profiling time (fraction of total)")
    print_row("device", "model", "variant", "execution", "collection", "transfer",
              "analysis", widths=(7, 9, 11, 10, 11, 9, 9))
    for (device_tag, name), variants in fractions.items():
        for variant, parts in variants.items():
            print_row(device_tag, model_label(name), variant, parts["execution"],
                      parts["collection"], parts["transfer"], parts["analysis"],
                      widths=(7, 9, 11, 10, 11, 9, 9))

    for (_device, _name), variants in fractions.items():
        assert variants["CS-CPU"]["analysis"] > 0.5
        assert variants["NVBIT-CPU"]["analysis"] > 0.5
        # Collection and analysis are fused on the device in the GPU-resident
        # variant; the separate analysis term is therefore zero and collection
        # dominates the (much smaller) total.
        assert variants["CS-GPU"]["analysis"] == 0.0
        assert variants["CS-GPU"]["collection"] > variants["CS-GPU"]["transfer"]
        total = sum(variants["CS-GPU"].values())
        assert total == pytest.approx(1.0, abs=1e-6)
