#!/usr/bin/env python
"""Event-pipeline performance harness (PR 3's acceptance instrument).

Times the end-to-end profiled workloads the fast-path work targets —

* ``coarse_megatron``  — megatron-gpt2-345m training, coarse events only
  (allocator + dispatch dominated);
* ``fine_gpt2``        — gpt2 training with device-side instrumentation
  (fine-grained delivery dominated);
* ``parallel_tp_megatron`` — megatron-gpt2-345m tensor-parallel training on
  two simulated A100s through the ProfileSpec parallelism path (one
  instrumented session per rank over a shared DeviceSet);

plus ``--quick`` variants small enough for a CI smoke step — and writes the
results to ``BENCH_pipeline.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_pipeline.py            # full run
    PYTHONPATH=src python benchmarks/perf_pipeline.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_pipeline.py --quick \\
        --check BENCH_pipeline.json          # fail on >2x regression

``--check`` compares each measured workload against the matching entry in a
previously written results file and exits non-zero when any workload is more
than ``--tolerance`` (default 2.0) times slower — the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import repro
import repro.tools  # noqa: F401  (side effect: tool registration)
from repro import api

#: Tool set attached to every benchmark workload: the bundled coarse tools
#: plus (on fine-grained runs) the batch-native access histogram.
COARSE_TOOLS = (
    "kernel_frequency",
    "memory_characteristics",
    "hotness",
    "inefficiency_locator",
    "memory_timeline",
)
FINE_TOOLS = COARSE_TOOLS + ("access_histogram",)

#: name -> (api.run kwargs, repeats).  Wall time is the best of
#: ``repeats`` runs, which suppresses scheduler noise.
WORKLOADS: dict[str, tuple[dict, int]] = {
    "coarse_megatron": (
        dict(model="megatron_gpt2_345m", mode="train", iterations=2,
             tools=list(COARSE_TOOLS)),
        5,
    ),
    "fine_gpt2": (
        dict(model="gpt2", mode="train", iterations=4,
             fine_grained=True, tools=list(FINE_TOOLS)),
        3,
    ),
    "parallel_tp_megatron": (
        dict(model="megatron_gpt2_345m", iterations=2,
             parallelism={"strategy": "tp", "world_size": 2},
             tools=list(COARSE_TOOLS)),
        3,
    ),
}

QUICK_WORKLOADS: dict[str, tuple[dict, int]] = {
    "coarse_megatron_quick": (
        dict(model="megatron_gpt2_345m", mode="train", iterations=1,
             tools=list(COARSE_TOOLS)),
        3,
    ),
    "fine_gpt2_quick": (
        dict(model="gpt2", mode="train", iterations=1,
             fine_grained=True, tools=list(FINE_TOOLS)),
        3,
    ),
    "parallel_tp_megatron_quick": (
        dict(model="megatron_gpt2_345m", iterations=1,
             parallelism={"strategy": "tp", "world_size": 2},
             tools=list(COARSE_TOOLS)),
        3,
    ),
}


def run_one(name: str, kwargs: dict, repeats: int) -> dict[str, object]:
    """Benchmark one workload; returns its result entry."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        result = api.run(kwargs["model"], **{k: v for k, v in kwargs.items()
                                             if k != "model"})
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        # Parallel profiles run one session per rank; sum their pipelines.
        sessions = getattr(result, "sessions", None) or [result.session]
        events = sum(s.processor.events_processed for s in sessions)
    entry = {
        "seconds": round(best, 4),
        "events_processed": events,
        "events_per_second": round(events / best) if best > 0 else 0,
        "repeats": repeats,
    }
    print(f"  {name:>24}: {best:8.3f} s   ({events} events, "
          f"{entry['events_per_second']} ev/s)")
    return entry


def check_against(results: dict, baseline_path: Path, tolerance: float) -> int:
    """Compare measured workloads against a baseline file; 0 = within budget."""
    baseline = json.loads(baseline_path.read_text())
    reference = baseline.get("workloads", {})
    failures = []
    for name, entry in results.items():
        base = reference.get(name)
        if not base:
            # A silently skipped workload would let the gate pass while
            # measuring nothing, so a missing baseline entry is a failure.
            print(f"  {name}: MISSING baseline entry in {baseline_path}")
            failures.append((name, None))
            continue
        ratio = entry["seconds"] / base["seconds"] if base["seconds"] else 0.0
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(f"  {name}: {entry['seconds']:.3f}s vs baseline "
              f"{base['seconds']:.3f}s  ({ratio:.2f}x)  {verdict}")
        if ratio > tolerance:
            failures.append((name, ratio))
    if failures:
        print(f"perf-smoke FAILED: {len(failures)} workload(s) regressed more "
              f"than {tolerance:.1f}x or had no baseline: "
              + ", ".join(f"{n} ({'no baseline' if r is None else f'{r:.2f}x'})"
                          for n, r in failures))
        return 1
    print("perf-smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the reduced CI workloads only")
    parser.add_argument("--full", action="store_true",
                        help="run both the quick and the full workloads")
    parser.add_argument("--output", type=Path, default=None,
                        help="write results JSON here (default: "
                             "BENCH_pipeline.json next to the repo root; "
                             "omitted entries from previous runs are kept)")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a baseline results file and exit "
                             "non-zero on regression instead of overwriting it")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed slowdown factor for --check (default 2.0)")
    args = parser.parse_args(argv)

    if args.full:
        selected = {**QUICK_WORKLOADS, **WORKLOADS}
        selection = "quick+full"
    elif args.quick:
        selected = dict(QUICK_WORKLOADS)
        selection = "quick"
    else:
        selected = dict(WORKLOADS)
        selection = "full"

    print(f"pipeline benchmark ({selection}, repro {repro.__version__})")
    results = {name: run_one(name, kwargs, repeats)
               for name, (kwargs, repeats) in selected.items()}

    if args.check is not None:
        # With an explicit --output, also persist what was measured — CI
        # uploads it as a workflow artifact so BENCH trajectories survive
        # across runs even though the gate never rewrites the baseline.
        if args.output is not None:
            measured = {
                "schema": 1,
                "repro_version": repro.__version__,
                "selection": selection,
                "baseline": str(args.check),
                "workloads": results,
            }
            args.output.write_text(json.dumps(measured, indent=2, sort_keys=True) + "\n")
            print(f"wrote measured results to {args.output}")
        return check_against(results, args.check, args.tolerance)

    output = args.output
    if output is None:
        output = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    document: dict = {}
    if output.exists():
        try:
            document = json.loads(output.read_text())
        except json.JSONDecodeError:
            document = {}
    document.setdefault("schema", 1)
    document["repro_version"] = repro.__version__
    workloads = document.setdefault("workloads", {})
    workloads.update(results)
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
