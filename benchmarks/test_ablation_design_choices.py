"""Ablation benches for the design choices called out in DESIGN.md.

Two ablations:

* **Trace-buffer size** — the CPU-side analysis model stalls the GPU every time
  the device trace buffer fills; larger buffers reduce flush rounds but cannot
  remove the transfer/analysis cost, while PASTA's GPU-resident model is
  insensitive to buffer size (it never ships raw records).
* **Instrumentation coverage** — NVBit's all-SASS instrumentation versus
  Compute Sanitizer's memory-only patching, isolating the cost of record-volume
  inflation plus SASS dump/parse from the analysis-placement decision.
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, print_header, print_row
from repro.gpusim.costmodel import CostModelConfig, InstrumentationBackend, OverheadModel
from repro.gpusim.device import A100
from repro.gpusim.trace import AnalysisModel, TraceBuffer
from repro.tools import WorkloadProfile
from repro import api

MiB = 1024 * 1024


@pytest.fixture(scope="module")
def bert_profile():
    profile = WorkloadProfile()
    api.run("bert", device="a100", tools=[profile], batch_size=bench_batch_size())
    return profile


def test_ablation_trace_buffer_size(benchmark, bert_profile):
    """Flush rounds vs buffer size for the CPU-side model (Figure 2a's stall source)."""
    total_records = bert_profile.total_accesses()
    sizes = [1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB]

    def evaluate():
        return {
            size: TraceBuffer(capacity_bytes=size).collect(total_records, AnalysisModel.CPU_SIDE)
            for size in sizes
        }

    stats = benchmark(evaluate)

    print_header("Ablation — device trace-buffer size (CPU-side analysis, BERT)")
    print_row("buffer MB", "flush rounds", "transferred MB", widths=(10, 14, 16))
    for size, stat in stats.items():
        print_row(size // MiB, stat.flush_rounds, stat.transferred_bytes / MiB,
                  widths=(10, 14, 16))
    gpu_stat = TraceBuffer(capacity_bytes=4 * MiB).collect(total_records, AnalysisModel.GPU_RESIDENT)
    print(f"GPU-resident model: 0 flush rounds, {gpu_stat.transferred_bytes / 1024:.0f} KB transferred")

    rounds = [stat.flush_rounds for stat in stats.values()]
    assert rounds == sorted(rounds, reverse=True)
    transferred = {stat.transferred_bytes for stat in stats.values()}
    assert len(transferred) == 1  # transfer volume is independent of buffer size
    assert gpu_stat.flush_rounds == 0


def test_ablation_instrumentation_coverage(benchmark, bert_profile):
    """Cost of all-SASS (NVBit) vs memory-only (Sanitizer) instrumentation."""
    model = OverheadModel(A100)
    launches = bert_profile.launches

    def evaluate():
        return {
            "sanitizer_gpu": model.workload_cost(launches, AnalysisModel.GPU_RESIDENT,
                                                 InstrumentationBackend.COMPUTE_SANITIZER),
            "sanitizer_cpu": model.workload_cost(launches, AnalysisModel.CPU_SIDE,
                                                 InstrumentationBackend.COMPUTE_SANITIZER),
            "nvbit_cpu": model.workload_cost(launches, AnalysisModel.CPU_SIDE,
                                             InstrumentationBackend.NVBIT),
            "nvbit_gpu": model.workload_cost(launches, AnalysisModel.GPU_RESIDENT,
                                             InstrumentationBackend.NVBIT),
        }

    costs = benchmark(evaluate)

    print_header("Ablation — instrumentation coverage x analysis placement (BERT, A100)")
    print_row("configuration", "normalised overhead", widths=(18, 22))
    for name, cost in costs.items():
        print_row(name, cost.normalized_overhead(), widths=(18, 22))

    # Coverage and placement compose multiplicatively: NVBit inflates every
    # configuration, and CPU-side analysis inflates every backend.
    assert costs["nvbit_cpu"].overhead_ns > costs["sanitizer_cpu"].overhead_ns
    assert costs["nvbit_gpu"].overhead_ns > costs["sanitizer_gpu"].overhead_ns
    assert costs["sanitizer_cpu"].overhead_ns > costs["sanitizer_gpu"].overhead_ns
    assert costs["nvbit_cpu"].overhead_ns == max(c.overhead_ns for c in costs.values())


def test_ablation_gpu_analysis_lane_count(benchmark, bert_profile):
    """Sensitivity of the GPU-resident analysis to the number of analysis lanes."""
    launches = bert_profile.launches
    lane_settings = [1, 8, 32, 128]

    def evaluate():
        out = {}
        for lanes in lane_settings:
            config = CostModelConfig(analysis_lanes_per_sm=lanes)
            out[lanes] = OverheadModel(A100, config).workload_cost(
                launches, AnalysisModel.GPU_RESIDENT
            )
        return out

    costs = benchmark(evaluate)

    print_header("Ablation — GPU analysis lanes per SM (BERT, A100, GPU-resident)")
    print_row("lanes/SM", "normalised overhead", widths=(10, 22))
    for lanes, cost in costs.items():
        print_row(lanes, cost.normalized_overhead(), widths=(10, 22))

    overheads = [costs[lanes].overhead_ns for lanes in lane_settings]
    assert overheads == sorted(overheads, reverse=True)
