"""Figure 14: memory usage over time for one GPT-2 training iteration on NVIDIA vs AMD.

Runs the same GPT-2 training iteration through the CUDA backend (A100) and the
HIP backend (MI300X), reconstructs both memory-usage timelines from tensor
allocation/reclamation events, and compares them: both show the ramp-up /
peak / ramp-down pattern of the caching allocator, while the NVIDIA run issues
fewer allocation events with a slightly higher peak.
"""

from __future__ import annotations

import pytest

from conftest import bench_batch_size, print_header, print_row
from repro.dlframework.backend import CUDA_BACKEND, HIP_BACKEND
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.dlframework.models import create_model
from repro.gpusim.device import A100, MI300X
from repro.gpusim.runtime import create_runtime
from repro.core.session import PastaSession
from repro.tools import MemoryTimelineTool

MiB = float(1024 * 1024)


def _train_one_iteration(spec, backend):
    runtime = create_runtime(spec)
    ctx = FrameworkContext(runtime, backend=backend)
    engine = ExecutionEngine(ctx)
    model = create_model("gpt2")
    timeline = MemoryTimelineTool()
    session = PastaSession(runtime, tools=[timeline])
    session.attach_framework(ctx)
    with session:
        engine.prepare(model)
        engine.run_training(model, iterations=1, batch_size=bench_batch_size())
    return timeline.timeline(runtime.device.index)


@pytest.fixture(scope="module")
def timelines():
    return {
        "NVIDIA": _train_one_iteration(A100, CUDA_BACKEND),
        "AMD": _train_one_iteration(MI300X, HIP_BACKEND),
    }


def test_figure14_memory_usage_nvidia_vs_amd(benchmark, timelines):
    def summarise():
        return {
            tag: {
                "events": t.event_count,
                "peak": t.peak_bytes,
                "curve": [t.usage_at(i / 19) for i in range(20)],
            }
            for tag, t in timelines.items()
        }

    summary = benchmark(summarise)

    print_header("Figure 14 — GPT-2 training memory usage over logical time (MB)")
    print_row("backend", "alloc events", "peak MB", "final MB", widths=(8, 14, 12, 12))
    for tag, t in timelines.items():
        print_row(tag, t.event_count, t.peak_bytes / MiB, t.final_bytes() / MiB,
                  widths=(8, 14, 12, 12))
    print("\nusage curve (sampled at 20 points, MB):")
    for tag in ("NVIDIA", "AMD"):
        curve = " ".join(f"{v / MiB:7.0f}" for v in summary[tag]["curve"])
        print(f"  {tag:>6}: {curve}")
    delta = [a - b for a, b in zip(summary["NVIDIA"]["curve"], summary["AMD"]["curve"])]
    print("  delta : " + " ".join(f"{v / MiB:7.0f}" for v in delta))

    nvidia, amd = timelines["NVIDIA"], timelines["AMD"]
    # Same three-phase shape on both backends.
    for t in (nvidia, amd):
        usages = [u for _i, u in t.samples]
        peak_index = usages.index(max(usages))
        assert 0 < peak_index < len(usages) - 1
        assert usages[-1] < max(usages)
    # Backend-specific differences: NVIDIA issues fewer events, peak at least as high.
    assert nvidia.event_count < amd.event_count
    assert nvidia.peak_bytes >= amd.peak_bytes * 0.95
