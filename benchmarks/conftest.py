"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs the
corresponding experiment on the simulated substrate, prints the same rows /
series the paper reports (so the shape can be compared by eye), and uses
``pytest-benchmark`` to time the analysis step itself.

Set ``PASTA_BENCH_FULL=1`` to run every workload at the paper's batch sizes;
by default a reduced batch size is used so the whole harness completes in a
couple of minutes.
"""

from __future__ import annotations

import os
from typing import Optional

import pytest

from repro.dlframework.models import MODEL_ABBREVIATIONS, PAPER_MODELS

#: Reduced batch size used unless PASTA_BENCH_FULL is set.
FAST_BATCH_SIZE: Optional[int] = 2


def bench_batch_size() -> Optional[int]:
    """Batch size override for benchmark workloads (None = paper batch size)."""
    if os.environ.get("PASTA_BENCH_FULL"):
        return None
    return FAST_BATCH_SIZE


def model_label(name: str) -> str:
    """The abbreviation used in the paper's figures (Table IV)."""
    return MODEL_ABBREVIATIONS.get(name, name)


def print_header(title: str) -> None:
    """Print a figure/table header in the benchmark output."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_row(*columns: object, widths: tuple[int, ...] = ()) -> None:
    """Print one aligned row of a result table."""
    if not widths:
        widths = tuple(18 for _ in columns)
    cells = []
    for value, width in zip(columns, widths):
        if isinstance(value, float):
            cells.append(f"{value:>{width}.3f}")
        else:
            cells.append(f"{str(value):>{width}}")
    print(" ".join(cells))


@pytest.fixture(scope="session")
def paper_models() -> tuple[str, ...]:
    """The six evaluation models of Table IV."""
    return PAPER_MODELS
