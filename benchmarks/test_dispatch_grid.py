"""ROADMAP item 3's closing acceptance: a 1000+-cell campaign at scale.

The drill: expand a 1024-cell grid, run it across **4 process workers**
through the real CLI, then run it again and demand

* the rerun is **100% cache hits** — zero cells re-simulated;
* one **single merged report** aggregates the whole grid from the store.

This is a scheduled dispatch benchmark, not a tier-1 test: it simulates a
thousand cells, so it only runs when ``PASTA_BENCH_DISPATCH=1`` is set (the
CI ``benchmarks`` job sets it; plain ``pytest`` skips it).  The cells are
the cheapest possible (no-tool alexnet inference, distinguished by a swept
grid-window knob) so the time measured is dispatch + cache + store
machinery, which is what the acceptance is about.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    not os.environ.get("PASTA_BENCH_DISPATCH"),
    reason="1000+-cell dispatch benchmark; set PASTA_BENCH_DISPATCH=1 to run",
)

#: The acceptance floor from ROADMAP item 3.
GRID_CELLS = 1024

WORKERS = 4

_SRC = Path(__file__).resolve().parent.parent / "src"


def _run_cli(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.commands import main; sys.exit(main())",
         *args],
        capture_output=True, text=True, cwd=cwd, env=env, timeout=1200,
    )


def _grid_spec() -> dict:
    # 1024 distinct digests over one cheap workload: each cell is a no-tool
    # alexnet inference run distinguished only by a swept window knob, so
    # the grid exercises dispatch at scale without an hour of simulation.
    return {
        "name": "dispatch-grid-1024",
        "models": ["alexnet"],
        "tools": [],
        "modes": ["inference"],
        "iterations": 1,
        "knob_sweep": [
            {"end_grid_id": 10_000_000 + index} for index in range(GRID_CELLS)
        ],
    }


def test_dispatch_grid_1024_cells_4_workers(tmp_path: Path) -> None:
    spec_path = tmp_path / "grid.json"
    spec_path.write_text(json.dumps(_grid_spec()))
    common = ["campaign", "run", str(spec_path),
              "--jobs", str(WORKERS), "--executor", "process",
              "--cache-dir", str(tmp_path / "cache"), "--json"]

    started = time.perf_counter()
    first = _run_cli([*common, "--store", str(tmp_path / "store1.jsonl")], tmp_path)
    cold_s = time.perf_counter() - started
    assert first.returncode == 0, first.stderr
    cold = json.loads(first.stdout)
    assert cold["total"] == GRID_CELLS
    assert cold["failed"] == 0
    assert cold["executed"] + cold["cached"] == GRID_CELLS

    started = time.perf_counter()
    second = _run_cli([*common, "--store", str(tmp_path / "store2.jsonl")], tmp_path)
    warm_s = time.perf_counter() - started
    assert second.returncode == 0, second.stderr
    warm = json.loads(second.stdout)
    # The acceptance: a rerun of the identical grid simulates *nothing*.
    assert warm["total"] == GRID_CELLS
    assert warm["executed"] == 0
    assert warm["cached"] == GRID_CELLS
    assert warm["failed"] == 0

    # One merged report over the whole grid, aggregated from the store.
    report = _run_cli(
        ["campaign", "report", str(tmp_path / "store2.jsonl"),
         "--by", "model", "--json"],
        tmp_path,
    )
    assert report.returncode == 0, report.stderr
    merged = json.loads(report.stdout)
    rows = merged["rollup"]
    assert len(rows) == 1, f"expected one merged row, got {rows!r}"
    assert rows[0]["model"] == "alexnet"
    assert int(rows[0]["jobs"]) == GRID_CELLS

    print(f"\ndispatch grid: {GRID_CELLS} cells x {WORKERS} workers  "
          f"cold {cold_s:.1f}s  warm {warm_s:.1f}s  "
          f"(rerun 100% cached: {warm['cached']}/{GRID_CELLS})")
