"""Multi-GPU parallelism profiles through the unified facade (Figure 15).

Profiles one training iteration of Megatron GPT-2 on two simulated A100s
under data, tensor and pipeline parallelism — each run is one
``pasta.profile(...).parallel(...)`` call that attaches a full PASTA session
per rank and aggregates per-rank + cross-rank reports.  The second half
records the TP run to a trace and replays it offline, byte-identically.

Run with:  python examples/parallel_profiles.py [--full]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import pasta, replay
from repro.core.registry import REGISTRY
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2

MiB = float(2**20)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full GPT-2 345M configuration (slower)")
    args = parser.parse_args()

    if args.full:
        model = "megatron-gpt2-345m"
    else:
        # Register a reduced configuration under its own name — exactly how a
        # plugin would add a model — so the demo stays fast.
        config = MegatronConfig(vocab_size=8192, hidden=512, num_layers=8,
                                num_heads=8, seq_length=256, batch_size=2)
        model = "megatron_gpt2_345m_demo"
        REGISTRY.register("models", model, lambda: MegatronGpt2(config),
                          overwrite=True)

    for strategy in ("dp", "tp", "pp"):
        result = pasta.profile(model).parallel(strategy, world_size=2).run()
        cross = result.reports()["cross_rank"]
        print(f"\n=== {strategy} ===")
        for rank, (peak, events) in enumerate(zip(cross["peak_bytes_per_rank"],
                                                  cross["allocation_events_per_rank"])):
            print(f"  GPU {rank}: peak {peak / MiB:8.1f} MB over {events} allocation events")
        print(f"  peak symmetry: {cross['peak_symmetry']:.2f}   "
              f"last/first: {cross['last_over_first_peak']:.2f}")

    print("\nExpected shapes: DP and TP are symmetric across GPUs, TP's peak is roughly "
          "half of DP's, and PP's last stage (LM head + logits) is heavier than its first.")

    # Record once, replay offline: the per-rank event streams live in one
    # trace, sliceable by device index, and replay reproduces the live
    # reports byte for byte.
    with tempfile.TemporaryDirectory() as scratch:
        trace = Path(scratch) / "tp.pastatrace"
        live = (pasta.profile(model)
                .parallel("tp", world_size=2)
                .with_tools("kernel_frequency")
                .record(trace)
                .run())
        replayed = replay(trace, live.spec)
        identical = live.reports() == replayed.reports()
        print(f"\nrecorded {trace.name}: replayed {replayed.events_replayed} events, "
              f"reports identical to live: {identical}")


if __name__ == "__main__":
    main()
