"""Tour of the profiler's self-telemetry layer (:mod:`repro.obs`).

The paper's profiler measures workloads; this layer measures the *profiler*.
The tour runs the same spec twice — telemetry off, then on — and shows:

1. the no-op fast path: reports are byte-identical either way;
2. the telemetry file: manifest provenance, the span tree, sampled pipeline
   counters (events/s, batch sizes, allocator free-list depth);
3. the self-overhead accounting: the profiler reporting its own cost the
   way it reports the simulated instrumentation's;
4. a campaign run feeding the same file: per-job lifecycle spans plus cache
   hit/retry counters.

Run with::

    PYTHONPATH=src python examples/telemetry_tour.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.api import ProfileSpec, execute
from repro.campaign import CampaignScheduler, CampaignSpec, ResultCache
from repro.obs import (
    Telemetry,
    activated,
    read_records,
    render_summary,
    render_tree,
    summarize,
)

SPEC = ProfileSpec(
    model="gpt2",
    device="a100",
    tools=("kernel_frequency",),
    fine_grained=True,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pasta-telemetry-tour-"))

    # -- 1. telemetry off: the default; nothing is written, nothing is paid.
    baseline_reports = execute(SPEC).reports()

    # -- 2. telemetry on: activate a run-scoped sink for the same spec.
    profile_dir = workdir / "profile"
    telemetry = Telemetry.open(profile_dir)
    with activated(telemetry):           # closes + flushes on exit
        with telemetry.span("tour.profile"):
            instrumented_reports = execute(SPEC).reports()

    identical = json.dumps(baseline_reports, sort_keys=True, default=str) == \
        json.dumps(instrumented_reports, sort_keys=True, default=str)
    print(f"reports byte-identical with telemetry on vs off: {identical}")

    # -- 3. read the file back: manifest, span tree, self-overhead.
    records = read_records(profile_dir)
    summary = summarize(records)
    print()
    print(render_summary(summary))
    print()
    print("span tree:")
    print(render_tree(records))
    overhead = summary["self_overhead"]
    print()
    print(f"telemetry cost itself {overhead['telemetry_ns'] / 1e6:.2f}ms "
          f"({overhead.get('overhead_fraction', 0) * 100:.2f}% of the run)")

    # -- 4. a campaign writing to its own telemetry file: job lifecycle
    #       spans, cache hits on the second pass.
    campaign = CampaignSpec(
        name="tour",
        models=["alexnet", "resnet18"],
        devices=["rtx3060"],
        tools=["kernel_frequency"],
        batch_size=2,
    )
    cache = ResultCache(workdir / "cache")
    for attempt in ("cold", "warm"):
        campaign_dir = workdir / f"campaign-{attempt}"
        with activated(Telemetry.open(campaign_dir)):
            CampaignScheduler(jobs=2, cache=cache).run(campaign)
        counters = summarize(read_records(campaign_dir))["metrics"]["counters"]
        hits = counters.get("campaign.cache_hits", 0)
        misses = counters.get("campaign.cache_misses", 0)
        print(f"campaign ({attempt}): cache_hits={hits} cache_misses={misses}")

    print()
    print(f"telemetry files under {workdir} — try:")
    print(f"  PYTHONPATH=src python -m repro.commands telemetry summary {profile_dir}")


if __name__ == "__main__":
    main()
