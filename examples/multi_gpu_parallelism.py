"""Multi-GPU memory behaviour of Megatron GPT-2 under DP, TP and PP (Figure 15).

Trains one iteration of the Megatron GPT-2 model on two simulated A100s under
data, tensor and pipeline parallelism and prints per-GPU memory statistics and
a compact per-rank usage curve.

Run with:  python examples/multi_gpu_parallelism.py [--full]
"""

from __future__ import annotations

import argparse

from repro.dlframework.models.megatron import MegatronConfig
from repro.dlframework.parallel import PARALLEL_RUNNERS, create_parallel_runner
from repro.gpusim import A100
from repro.gpusim.multigpu import DeviceSet

MiB = float(2**20)


def sparkline(values: list[int], width: int = 50) -> str:
    """Render a memory-usage curve as a coarse text sparkline."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = values[::step][:width]
    peak = max(sampled) or 1
    levels = " .:-=+*#%@"
    return "".join(levels[min(len(levels) - 1, int(v / peak * (len(levels) - 1)))] for v in sampled)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full GPT-2 345M configuration (slower)")
    args = parser.parse_args()
    config = MegatronConfig() if args.full else MegatronConfig(
        vocab_size=8192, hidden=512, num_layers=8, num_heads=8, seq_length=256, batch_size=2
    )

    for strategy in PARALLEL_RUNNERS:
        runner = create_parallel_runner(strategy, DeviceSet([A100, A100]), config)
        result = runner.run_iteration()
        peaks = result.peak_bytes()
        events = result.allocation_event_counts()
        print(f"\n=== {strategy} ===")
        for rank, (peak, count) in enumerate(zip(peaks, events)):
            print(f"  GPU {rank}: peak {peak / MiB:8.1f} MB over {count} allocation events")
        for rank, timeline in enumerate(result.usage_timelines()):
            usages = [usage for _idx, usage in timeline]
            print(f"  GPU {rank} usage: |{sparkline(usages)}|")

    print("\nExpected shapes: DP and TP are symmetric across GPUs, TP's peak is roughly "
          "half of DP's, and PP's last stage (LM head + logits) is heavier than its first.")


if __name__ == "__main__":
    main()
