"""UVM prefetching study: object-level vs tensor-level prefetch (Figures 11/12).

Records each model's kernel schedule (which memory objects and which tensors
every kernel touches) with the UVM prefetch advisor, then replays it against
the UVM simulator under three policies (no prefetch, object-level,
tensor-level) with and without memory oversubscription.

Run with:  python examples/uvm_prefetch_study.py [--oversubscription 3.0]
"""

from __future__ import annotations

import argparse

from repro.dlframework.models import MODEL_ABBREVIATIONS, PAPER_MODELS
from repro.gpusim import A100, RTX3060
from repro.tools import UvmPrefetchExecutor
from repro.workloads import record_uvm_schedule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--oversubscription", type=float, default=3.0,
                        help="oversubscription factor for the constrained scenario")
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--models", nargs="*", default=list(PAPER_MODELS))
    args = parser.parse_args()

    devices = {"RTX 3060": RTX3060, "A100": A100}
    header = f"{'model':>10} {'device':>9} {'scenario':>22} {'object':>8} {'tensor':>8}"
    print(header)
    print("-" * len(header))
    for model_name in args.models:
        schedule, advisor, _ = record_uvm_schedule(model_name, device="rtx3060",
                                                   batch_size=args.batch_size)
        label = MODEL_ABBREVIATIONS.get(model_name, model_name)
        for device_name, spec in devices.items():
            for factor, scenario in ((1.0, "no oversubscription"),
                                     (args.oversubscription, f"{args.oversubscription:.0f}x oversubscribed")):
                executor = UvmPrefetchExecutor(spec, oversubscription_factor=factor)
                norm = executor.normalized_times(schedule)
                print(f"{label:>10} {device_name:>9} {scenario:>22} "
                      f"{norm['object_level']:8.2f} {norm['tensor_level']:8.2f}")
        print(f"{'':>10} (schedule: {len(schedule)} kernels, "
              f"{advisor.managed_footprint_bytes() / 2**20:.0f} MB of managed objects)")

    print("\nvalues are execution time normalised to the no-prefetch baseline; "
          "< 1.0 means the prefetch policy helps, > 1.0 means it hurts.")


if __name__ == "__main__":
    main()
