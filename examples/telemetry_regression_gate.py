"""Telemetry regression gate: ``pasta telemetry diff`` as a CI check.

The cross-run diff turns two telemetry files into a performance gate: record
a baseline run (main), record a candidate run (the branch), then diff — the
command exits non-zero when any span's wall time regressed past the
threshold, so the shell exit code *is* the gate.  This example builds the
whole loop in-process:

1. record a baseline profile run with telemetry on;
2. record a "candidate" run of the same spec (same spec digest, so the two
   runs are comparable — the diff warns when digests differ);
3. diff them with :func:`repro.obs.diff_runs` and render the report;
4. show the equivalent CLI gate, which is what a CI job would run.

Run with::

    PYTHONPATH=src python examples/telemetry_regression_gate.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import repro
from repro.api import ProfileSpec, execute
from repro.obs import (
    RunIndex,
    Telemetry,
    activated,
    diff_runs,
    read_records,
    render_diff,
    render_run_list,
)

SPEC = ProfileSpec(
    model="gpt2",
    device="a100",
    tools=("kernel_frequency",),
    fine_grained=True,
)

#: Flag any span whose wall time grew by more than 20%.  Simulated runs are
#: fast and jittery; a real CI gate over long profiles can afford 5-10%.
THRESHOLD = 0.20


def record(target: Path) -> None:
    """One telemetry-instrumented run of the shared spec into ``target``."""
    telemetry = Telemetry.open(target)
    telemetry.annotate(spec_digest=SPEC.digest(repro.__version__))
    with activated(telemetry):
        with telemetry.span("gate.profile"):
            execute(SPEC)


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="pasta-regression-gate-"))
    baseline_dir = workdir / "baseline"
    candidate_dir = workdir / "candidate"

    # -- 1 + 2. record both sides.  In CI these two runs happen in separate
    #           jobs (main vs branch) with the telemetry files exchanged as
    #           artifacts; here they run back to back.
    record(baseline_dir)
    record(candidate_dir)

    # The run index is how a gate finds its inputs when CI keeps a directory
    # of historical runs rather than exactly two files.
    print(render_run_list(RunIndex(workdir).entries))
    print()

    # -- 3. the diff: per-span wall/CPU deltas, counter deltas, regressions.
    result = diff_runs(
        read_records(baseline_dir),
        read_records(candidate_dir),
        threshold=THRESHOLD,
    )
    print(render_diff(result))
    print()

    # -- 4. the CLI equivalent — the exit code is the gate:
    #
    #   pasta telemetry diff baseline/ candidate/ --threshold 0.20 \
    #       || exit 1   # (redundant: the command already exits non-zero)
    #
    regressions = int(result["regressions"])  # type: ignore[arg-type]
    if regressions:
        print(f"GATE FAILED: {regressions} span(s) regressed "
              f"past +{THRESHOLD:.0%}")
        return 1
    print(f"gate passed: no span regressed past +{THRESHOLD:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
