"""Chaos drill: a campaign survives injected faults, crashes and takeovers.

The campaign fabric claims to be crash-safe; this example proves it on your
machine in a few seconds, using the same deterministic fault-injection
harness the chaos test suite runs:

1. a campaign runs under a :class:`~repro.campaign.FaultPlan` that makes one
   job fail twice (retried with backoff), slows another down, tears one
   store append mid-line and corrupts one cache entry — and still finishes
   with zero failed jobs;
2. a worker subprocess is SIGKILL'd mid-campaign (the ``crash`` fault kind
   is a real ``kill -9``: nothing is flushed, no handler runs);
3. a second scheduler resumes over the same campaign directory, takes over
   the dead worker's stale leases, simulates *only* the missing cells, and
   produces the same merged report an uninterrupted run would.

Run with::

    PYTHONPATH=src python examples/fault_injection_drill.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

from repro.campaign import (
    CampaignScheduler,
    CampaignSpec,
    FaultInjector,
    FaultPlan,
    FaultRule,
    LeaseManager,
    ResultCache,
    ResultStore,
    faults_scope,
    rollup,
)

SPEC = CampaignSpec(
    name="chaos-drill",
    models=["alexnet", "resnet18"],
    tools=["kernel_frequency", "memory_characteristics"],
    analysis_models=["gpu_resident", "cpu_side"],
    iterations=1,
    batch_size=1,
)


def drill_recoverable_faults(workdir: Path) -> None:
    """Every recoverable fault mode in one run — and zero failed jobs."""
    plan = FaultPlan(seed=11, rules=(
        FaultRule(site="scheduler.job", kind="error", times=2),
        FaultRule(site="runner.execute", kind="slow", times=1, delay_s=0.05),
        FaultRule(site="store.append", kind="torn_write", times=1),
        FaultRule(site="cache.put", kind="cache_corrupt", times=1),
    ))
    scheduler = CampaignScheduler(
        retries=3,
        backoff_s=0.02,  # exponential backoff with decorrelated jitter
        cache=ResultCache(workdir / "cache"),
        store=ResultStore(workdir / "results.jsonl"),
    )
    with faults_scope(FaultInjector(plan)) as injector:
        result = scheduler.run(SPEC)
    print(f"[1] injected {injector.injected} faults -> "
          f"{result.failed} failed jobs, {result.executed} executed, "
          f"{result.summary()['backoff_s']}s spent in retry backoff")
    assert result.failed == 0


def drill_kill_and_resume(workdir: Path) -> str:
    """SIGKILL a worker mid-campaign, then resume; returns the merged report."""
    spec_path = workdir / "spec.json"
    spec_path.write_text(json.dumps(SPEC.to_dict()))
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[1] / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    # The 4th simulated job is a hard kill -9: no flush, no cleanup.
    env["PASTA_FAULTS"] = json.dumps(
        {"rules": [{"site": "runner.execute", "kind": "crash", "after": 3}]}
    )
    body = (
        "from repro.commands import main\n"
        "raise SystemExit(main(["
        f"'campaign', 'run', {str(spec_path)!r}, "
        f"'--cache-dir', {str(workdir / 'cache')!r}, "
        f"'--store', {str(workdir / 'results.jsonl')!r}, "
        "'--workers', '0/2', "
        f"'--lease-dir', {str(workdir / 'leases')!r}, '--lease-ttl', '0.5'"
        "]))\n"
    )
    proc = subprocess.run([sys.executable, "-c", body], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    store = ResultStore(workdir / "results.jsonl")
    survived = len(store.latest_by_digest())
    stale = len(list((workdir / "leases").glob("*.lease")))
    print(f"[2] worker killed by SIGKILL; {survived} records survived, "
          f"{stale} stale lease(s) left behind")

    # Resume in-process as worker 1: finish shard 1, wait out the dead
    # worker's lease ttl, take its cells over, re-simulate nothing done.
    scheduler = CampaignScheduler(
        cache=ResultCache(workdir / "cache"),
        store=store,
        leases=LeaseManager(workdir / "leases", ttl_s=0.5),
        shard=(1, 2),
    )
    result = scheduler.run(SPEC)
    assert result.failed == 0
    assert result.cached == survived  # zero re-simulation of finished cells
    print(f"[3] resume: {result.cached} cells recovered, "
          f"{result.executed} simulated, {result.stolen} stolen from the "
          f"dead worker, all leases released")
    ok = [r for r in store.latest_by_digest().values()
          if r.get("status") == "ok"]
    return json.dumps(rollup(ok, by="model"), sort_keys=True)


def main() -> None:
    warnings.simplefilter("ignore", RuntimeWarning)  # torn-line read notices
    with tempfile.TemporaryDirectory(prefix="pasta-chaos-") as tmp:
        drill_recoverable_faults(Path(tmp) / "faults")

        killed = Path(tmp) / "killed"
        killed.mkdir()
        resumed_report = drill_kill_and_resume(killed)

        # An uninterrupted run in a fresh directory: byte-identical report.
        clean = Path(tmp) / "clean"
        store = ResultStore(clean / "results.jsonl")
        CampaignScheduler(cache=ResultCache(clean / "cache"), store=store).run(SPEC)
        ok = [r for r in store.latest_by_digest().values()
              if r.get("status") == "ok"]
        clean_report = json.dumps(rollup(ok, by="model"), sort_keys=True)
        assert resumed_report == clean_report
        print("[4] merged report after the kill+resume is byte-identical "
              "to an uninterrupted run")


if __name__ == "__main__":
    main()
