"""Profiling as a service in one file: daemon + remote client, end to end.

``pasta serve`` turns the profiler into a long-lived service: specs go in
over HTTP, results stream back as JSON Lines, and a content-addressed cache
means no spec is ever simulated twice — across clients, restarts, even
``kill -9``.  This example boots a daemon in-process (an operator would run
``pasta serve --port 8080`` instead), then drives it through
``pasta.connect``, whose builder is *the same fluent surface* as local
``pasta.profile`` — swap the terminal verb ``.run()`` for ``.submit()`` and
everything else carries over.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import pasta
from repro.serve import PastaDaemon
from repro.core.serialization import json_sanitize, stable_json_dumps


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="pasta-serve-") as tmp:
        # 1. The service.  All state (cache + job journal) lives under
        #    data_dir; port=0 binds an ephemeral port for the demo.
        with PastaDaemon(Path(tmp) / "serve", workers=2) as daemon:
            daemon.start()
            print(f"daemon up at {daemon.url}\n")

            # 2. The client.  connect() mirrors the pasta.profile builder:
            #    same chained configuration, .submit() instead of .run().
            client = pasta.connect(daemon.url, namespace="quickstart")
            handle = (
                client.profile("alexnet")
                .with_tool("kernel_frequency")
                .iterations(2)
                .submit()
            )
            print(f"submitted {handle.id}; streaming records:")
            for record in handle.stream():
                line = {k: record[k] for k in ("type", "v") if k in record}
                line["event"] = record.get("event", record.get("state"))
                print(f"  {line}")

            remote = handle.result()
            summary = remote.summary
            print(f"\nremote run: cache_hit={remote.cache_hit} "
                  f"digest={remote.digest[:12]}…")
            print(f"  kernels observed: {summary['kernel_launches']}")

            # 3. The API-redesign contract: the remote result is
            #    byte-identical to running the same spec locally.
            local = (
                pasta.profile("alexnet")
                .with_tool("kernel_frequency")
                .iterations(2)
                .run()
            )
            identical = stable_json_dumps(
                json_sanitize(local.reports())
            ) == stable_json_dumps(json_sanitize(remote.reports()))
            print(f"  remote reports == local reports: {identical}")

            # 4. The cache contract: resubmitting the identical spec never
            #    re-simulates — the daemon replays the stored record.
            rerun = (
                client.profile("alexnet")
                .with_tool("kernel_frequency")
                .iterations(2)
                .submit()
                .result()
            )
            print(f"  resubmit cache_hit: {rerun.cache_hit}")

            health = client.health()
            print(f"\nhealth: executed={health['executed']} "
                  f"cache_hits={health['cache_hits']} "
                  f"jobs={health['jobs']}")


if __name__ == "__main__":
    main()
