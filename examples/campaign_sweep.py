"""Mini Figure 9-style sweep driven through the campaign engine.

Figure 9 of the paper compares profiling overhead across workloads, devices
and analysis models.  Instead of looping over ``pasta.run`` by hand, this
example declares the grid once, lets the campaign scheduler execute it over a
worker pool with result caching, and aggregates the records into the
per-device overhead comparison the figure plots.

Run with::

    PYTHONPATH=src python examples/campaign_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignScheduler,
    CampaignSpec,
    ResultCache,
    ResultStore,
    overhead_model_comparison,
    render_table,
    rollup,
)


def main() -> None:
    # The grid: 3 workloads x 2 devices x 2 tool selections x both analysis
    # models = 24 jobs, each one cell of a Figure 9-style sweep.
    spec = CampaignSpec(
        name="fig9-mini",
        models=["alexnet", "resnet18", "bert"],
        devices=["a100", "rtx3060"],
        tools=["kernel_frequency", "memory_characteristics"],
        analysis_models=["gpu_resident", "cpu_side"],
        batch_size=2,
    )
    jobs = spec.expand()
    print(f"campaign {spec.name!r} expands to {len(jobs)} jobs, e.g. {jobs[0].label()}")

    workdir = Path(tempfile.mkdtemp(prefix="pasta-campaign-"))
    scheduler = CampaignScheduler(
        jobs=4,
        cache=ResultCache(workdir / "cache"),
        store=ResultStore(workdir / "results.jsonl"),
    )

    result = scheduler.run(spec)
    print(f"first run : {result.executed} executed, {result.cached} cached, "
          f"{result.failed} failed in {result.duration_s:.2f}s")

    # Identical spec, second run: every job is served from the cache.
    rerun = scheduler.run(spec)
    print(f"second run: {rerun.executed} executed, {rerun.cached} cached "
          f"(100% cache hits)\n")

    records = result.records()
    print("# per-model roll-up")
    print(render_table(rollup(records, by="model")))
    print("\n# analysis-model overhead comparison (Figure 9's headline ratio)")
    print(render_table(overhead_model_comparison(records)))


if __name__ == "__main__":
    main()
