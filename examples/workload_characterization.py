"""DL workload characterisation across the paper's six evaluation models.

Reproduces, at example scale, the Figure 7 / Table V / Figure 4 case studies:
kernel invocation frequency, memory footprint vs working set, and the
cross-layer call stack of the most memory-referenced kernel.

Run with:  python examples/workload_characterization.py [--mode train] [--batch-size N]
"""

from __future__ import annotations

import argparse

from repro.dlframework.models import MODEL_ABBREVIATIONS, PAPER_MODELS
from repro.tools import (
    InefficiencyLocatorTool,
    KernelFrequencyTool,
    MemoryCharacteristicsTool,
)
from repro import run

MiB = float(2**20)


def characterise(model_name: str, mode: str, batch_size: int | None) -> None:
    frequency = KernelFrequencyTool()
    memory = MemoryCharacteristicsTool()
    locator = InefficiencyLocatorTool()
    run(model_name, device="a100", mode=mode,
        tools=[frequency, memory, locator], batch_size=batch_size)

    label = MODEL_ABBREVIATIONS.get(model_name, model_name)
    summary = memory.summary()
    print(f"\n=== {label} ({mode}) ===")
    print(f"kernels: {summary.kernel_count}, distinct kernel names: {frequency.distinct_kernels}")
    print(f"footprint: {summary.memory_footprint_bytes / MiB:.1f} MB, "
          f"working set: {summary.working_set_bytes / MiB:.1f} MB, "
          f"median kernel WS: {summary.median_working_set_bytes / MiB:.2f} MB")
    print(f"top-5 kernels cover {frequency.concentration(5):.0%} of all launches:")
    for entry in frequency.top_kernels(5):
        print(f"  {entry.invocations:5d}x  {entry.kernel_name}")

    finding = locator.locate("MAX_MEM_REFERENCED_KERNEL")
    if finding is not None:
        print("\ncross-layer call stack of the most memory-referenced kernel:")
        print("  " + finding.render().replace("\n", "\n  "))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=["inference", "train"], default="inference")
    parser.add_argument("--batch-size", type=int, default=4,
                        help="batch size override (use the paper's sizes with 0)")
    parser.add_argument("--models", nargs="*", default=list(PAPER_MODELS))
    args = parser.parse_args()
    batch = None if args.batch_size == 0 else args.batch_size
    for model_name in args.models:
        characterise(model_name, args.mode, batch)


if __name__ == "__main__":
    main()
