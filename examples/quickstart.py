"""Quickstart: profile a model with PASTA in a dozen lines.

Creates a simulated A100, runs one ResNet-18 inference pass under a PASTA
session with two built-in tools, and prints their reports.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.session import PastaSession
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.dlframework.models import create_model
from repro.gpusim import A100, create_runtime
from repro.tools import KernelFrequencyTool, MemoryCharacteristicsTool


def main() -> None:
    # 1. A simulated GPU and a DL-framework context bound to it.
    runtime = create_runtime(A100)
    ctx = FrameworkContext(runtime)
    engine = ExecutionEngine(ctx)

    # 2. A PASTA session with two analysis tools from the collection.
    frequency = KernelFrequencyTool()
    memory = MemoryCharacteristicsTool()
    session = PastaSession(runtime, tools=[frequency, memory])
    session.attach_framework(ctx)

    # 3. Run the workload under the session.
    model = create_model("resnet18")
    with session:
        engine.prepare(model)
        summary = engine.run_inference(model, iterations=1)

    # 4. Inspect the results.
    print(f"model: {summary.model_name}, kernels launched: {summary.kernel_launches}")
    print(f"peak pool memory: {summary.peak_allocated_bytes / 2**20:.1f} MB")
    print("\nmost frequently invoked kernels:")
    for entry in frequency.top_kernels(5):
        print(f"  {entry.invocations:5d}x  {entry.kernel_name}")
    ws = memory.summary()
    print(f"\nmemory footprint: {ws.memory_footprint_bytes / 2**20:.1f} MB, "
          f"working set: {ws.working_set_bytes / 2**20:.1f} MB "
          f"(ratio {ws.memory_footprint_bytes / max(1, ws.working_set_bytes):.2f}x)")
    print(f"profiling overhead (GPU-resident analysis): "
          f"{session.overhead_accountant.normalized_overhead():.1f}x execution time")


if __name__ == "__main__":
    main()
