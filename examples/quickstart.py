"""Quickstart: profile a model with PASTA in three lines.

The whole framework is driven by one declarative configuration
(:class:`repro.ProfileSpec`) behind one fluent facade: pick a model, a
device and a set of analysis tools, call ``.run()``, read the reports.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from repro import pasta


def main() -> None:
    # One fluent line from model to reports.
    result = (pasta.profile("resnet18")
                   .on("a100")
                   .with_tools("kernel_frequency", "memory_characteristics")
                   .run())

    summary = result.summary
    print(f"model: {summary.model_name}, kernels launched: {summary.kernel_launches}")
    print(f"peak pool memory: {summary.peak_allocated_bytes / 2**20:.1f} MB")

    # Tools are reachable by their registry names.
    frequency = result.tool("kernel_frequency")
    print("\nmost frequently invoked kernels:")
    for entry in frequency.top_kernels(5):
        print(f"  {entry.invocations:5d}x  {entry.kernel_name}")

    ws = result.tool("memory_characteristics").summary()
    print(f"\nmemory footprint: {ws.memory_footprint_bytes / 2**20:.1f} MB, "
          f"working set: {ws.working_set_bytes / 2**20:.1f} MB "
          f"(ratio {ws.memory_footprint_bytes / max(1, ws.working_set_bytes):.2f}x)")
    overhead = result.reports()["overhead"]
    print(f"profiling overhead (GPU-resident analysis): "
          f"{overhead['normalized_overhead']:.1f}x execution time")

    # The configuration that drove the run is plain, serializable data —
    # hand it to the campaign engine, a JSON file, or a worker pool unchanged.
    print(f"\nthe run above as a declarative spec:\n{result.spec.to_json(indent=2)}")


if __name__ == "__main__":
    main()
