"""Record a workload once, then replay it under both analysis models.

Figure 9 of the paper compares PASTA's GPU-resident collect-and-analyze model
against conventional CPU-side analysis.  The live way to produce that
comparison is to simulate the workload twice, once per analysis model.  With
the trace subsystem the simulation runs **once**: the session records its
normalised event stream to disk, and each analysis model is an offline replay
of the same trace — the record-once/analyze-many model of vendor profilers'
offline workflows.

Run with::

    PYTHONPATH=src python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import pasta
from repro.replay import TraceReader


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="pasta-trace-"))
    trace = workdir / "resnet18.pastatrace"

    # 1. Simulate once, recording every normalised event the handler emits.
    #    The spec that configures the run is the same object that will
    #    configure each replay.
    spec = (pasta.profile("resnet18")
                 .on("a100")
                 .batch_size(2)
                 .with_tools("kernel_frequency", "memory_characteristics")
                 .record(trace)
                 .build())
    result = pasta.run(spec)
    reader = TraceReader(trace)
    print(f"recorded {reader.footer.event_count} events "
          f"({trace.stat().st_size} bytes compressed) to {trace}")

    # 2. Replay the recording spec unchanged: reports match the live
    #    session's byte for byte.
    replayed = pasta.replay(trace, spec)
    live_reports = result.reports()
    for name, report in replayed.reports().items():
        status = "identical" if report == live_reports[name] else "DIFFERENT"
        print(f"  replayed report {name!r}: {status}")

    # 3. What-if: re-run the overhead analysis under each analysis model
    #    without touching the simulator again.
    overheads = {}
    for model in ("gpu_resident", "cpu_side"):
        overhead = pasta.replay(trace, analysis_model=model).reports()["overhead"]
        overheads[model] = overhead
        print(f"\n[{model}]")
        for key in ("kernels", "collection_ns", "transfer_ns", "analysis_ns",
                    "normalized_overhead"):
            print(f"  {key}: {overhead[key]}")

    ratio = (overheads["cpu_side"]["normalized_overhead"]
             / overheads["gpu_resident"]["normalized_overhead"])
    print(f"\nCPU-side analysis is {ratio:,.0f}x more expensive than "
          f"GPU-resident on this workload — one simulation, two answers.")


if __name__ == "__main__":
    main()
