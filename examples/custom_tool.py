"""Developer guide in one file: building a custom PASTA tool.

The paper's extensibility claim is that a new analysis is "a few overridden
functions" on the tool template.  This example builds a **host-device traffic
analyzer** — a tool that does not ship with the collection — by overriding
three hooks: it attributes every explicit memory copy and every synchronisation
stall to the operator that was executing, then reports the operators that move
the most data across PCIe.

Writing batch-aware tools
-------------------------
Fine-grained (device-side) data arrives as **columnar batches**: one
``MemoryAccessBatch`` / ``InstructionBatch`` event per kernel launch, holding
the launch's sampled records as parallel arrays.  You never have to care —
subscribing to ``EventCategory.MEMORY_ACCESS`` and overriding
``on_memory_access`` keeps working, because the base class unrolls each batch
into the per-record hook in delivery order.  But if your analysis is hot,
override the batch hook and consume the arrays directly::

    class MyTool(PastaTool):
        subscribed_categories = frozenset({EventCategory.MEMORY_ACCESS})
        requires_fine_grained = True

        def on_memory_access_batch(self, batch):   # native fast path
            self.writes += sum(batch.write_flags)  # columnar, no per-record events

        def on_memory_access(self, event):         # still used when a trace
            self.writes += event.is_write          # carries per-record events

Keep both implementations in agreement: the pipeline guarantees a batch
unrolls to exactly the per-record stream, so the two hooks must accumulate
identical state (see ``repro/tools/access_histogram.py`` for the bundled
reference and ``tests/test_perf_pipeline.py`` for the equivalence harness).

Run with:  python examples/custom_tool.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.events import (
    EventCategory,
    MemcpyEvent,
    OperatorStartEvent,
    SynchronizationEvent,
)
from repro import pasta
from repro.core.registry import register_tool
from repro.core.tool import PastaTool


class TransferAnalyzerTool(PastaTool):
    """Attributes host-device traffic and sync calls to framework operators."""

    tool_name = "transfer_analyzer"
    subscribed_categories = frozenset(
        {EventCategory.MEMCPY, EventCategory.SYNCHRONIZATION, EventCategory.OPERATOR_START}
    )

    def __init__(self) -> None:
        super().__init__()
        self._current_op = "<outside operators>"
        self.bytes_by_op: dict[str, int] = defaultdict(int)
        self.copies_by_direction: dict[str, int] = defaultdict(int)
        self.sync_calls = 0

    # -- the three overridden hooks ------------------------------------- #
    def on_operator_start(self, event: OperatorStartEvent) -> None:
        self._current_op = event.name

    def on_memcpy(self, event: MemcpyEvent) -> None:
        self.bytes_by_op[self._current_op] += event.size
        self.copies_by_direction[event.direction] += event.size

    def on_synchronization(self, event: SynchronizationEvent) -> None:
        self.sync_calls += 1

    # -- reporting ------------------------------------------------------- #
    def report(self) -> dict[str, object]:
        top = sorted(self.bytes_by_op.items(), key=lambda kv: kv[1], reverse=True)[:5]
        return {
            "tool": self.tool_name,
            "sync_calls": self.sync_calls,
            "bytes_by_direction": dict(self.copies_by_direction),
            "top_operators_by_traffic": top,
        }


def main() -> None:
    # The custom tool can be registered so it is selectable by name
    # (PASTA_TOOL=transfer_analyzer), exactly like the built-in collection.
    register_tool(TransferAnalyzerTool.tool_name, TransferAnalyzerTool, overwrite=True)

    # Once registered, the tool is selectable by name everywhere a built-in
    # is: the fluent facade, `pasta profile -t transfer_analyzer`, campaign
    # specs, and trace replay.
    result = (pasta.profile("whisper")
                   .on("a100")
                   .batch_size(4)
                   .with_tools("transfer_analyzer")
                   .run())
    report = result.report("transfer_analyzer")

    print(f"synchronisation calls observed: {report['sync_calls']}")
    print("bytes moved per direction:")
    for direction, nbytes in report["bytes_by_direction"].items():
        print(f"  {direction:>16}: {nbytes / 2**20:8.1f} MB")
    print("operators responsible for the most host-device traffic:")
    for op_name, nbytes in report["top_operators_by_traffic"]:
        print(f"  {nbytes / 2**20:8.1f} MB  {op_name}")


if __name__ == "__main__":
    main()
