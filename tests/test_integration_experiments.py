"""End-to-end integration tests asserting the paper's qualitative result shapes.

Each test mirrors one of the paper's evaluation artefacts (Figure 7, Table V,
Figures 13-15) at reduced scale, checking the *shape* of the result rather
than absolute numbers — the same criterion the benchmark harness reports on.
"""

from __future__ import annotations

import pytest

from repro.dlframework.models import PAPER_MODELS
from repro.dlframework.models.megatron import MegatronConfig
from repro.dlframework.parallel import (
    DataParallelRunner,
    PipelineParallelRunner,
    TensorParallelRunner,
)
from repro.gpusim.device import A100
from repro.gpusim.multigpu import DeviceSet
from repro.tools import (
    KernelFrequencyTool,
    MemoryCharacteristicsTool,
    MemoryTimelineTool,
    TimeSeriesHotnessTool,
)
from repro import api

SMALL_CONFIG = MegatronConfig(
    vocab_size=2048, hidden=256, num_layers=4, num_heads=8, seq_length=128, batch_size=2
)


class TestFigure7Shape:
    """Kernel invocation frequency: a small subset of kernels dominates."""

    @pytest.mark.parametrize("model_name", ["alexnet", "bert", "gpt2"])
    def test_top_kernels_dominate(self, model_name):
        freq = KernelFrequencyTool()
        api.run(model_name, device="a100", tools=[freq], batch_size=2)
        assert freq.total_launches > 20
        # The top-5 kernels account for the majority of launches even though
        # many distinct kernels exist.
        assert freq.concentration(5) > 0.5
        assert freq.distinct_kernels >= 5

    def test_alexnet_hot_kernels_include_im2col_and_gemm(self):
        freq = KernelFrequencyTool()
        api.run("alexnet", device="a100", tools=[freq], batch_size=2)
        top_names = " ".join(entry.kernel_name for entry in freq.top_kernels(5))
        assert "im2col" in top_names or "gemm" in top_names


class TestTableVShape:
    """Working sets are much smaller than overall footprints."""

    @pytest.mark.parametrize("model_name", PAPER_MODELS)
    def test_footprint_exceeds_working_set(self, model_name):
        mem = MemoryCharacteristicsTool()
        api.run(model_name, device="a100", tools=[mem], batch_size=2)
        summary = mem.summary()
        assert summary.kernel_count > 20
        assert summary.memory_footprint_bytes > summary.working_set_bytes > 0
        # Most kernels use far less memory than the maximum working set.
        assert summary.median_working_set_bytes <= summary.working_set_bytes
        assert summary.p90_working_set_bytes <= summary.working_set_bytes
        assert summary.min_working_set_bytes <= summary.median_working_set_bytes

    def test_training_footprint_exceeds_inference_footprint(self):
        inference = MemoryCharacteristicsTool()
        training = MemoryCharacteristicsTool()
        api.run("resnet18", device="a100", mode="inference", tools=[inference], batch_size=2)
        api.run("resnet18", device="a100", mode="train", tools=[training], batch_size=2)
        assert training.memory_footprint_bytes > inference.memory_footprint_bytes
        assert training.summary().kernel_count > inference.summary().kernel_count

    def test_underutilized_memory_exists(self):
        mem = MemoryCharacteristicsTool()
        api.run("bert", device="a100", tools=[mem], batch_size=2)
        # A substantial fraction of allocated memory is never referenced by any
        # kernel (the swapping/offloading insight of Section V-B2).
        assert mem.underutilized_bytes() > 0


class TestFigure13Shape:
    """BERT inference hotness: long-lived hot blocks plus bursty blocks."""

    def test_bert_hotness_classification(self):
        hotness = TimeSeriesHotnessTool(kernels_per_window=10)
        api.run("bert", device="a100", tools=[hotness], batch_size=2)
        blocks, matrix = hotness.hotness_matrix()
        assert len(blocks) > 10
        assert matrix.shape == (len(blocks), hotness.window_count)
        classes = hotness.classify_blocks()
        kinds = {c.kind for c in classes}
        # Both long-lived (parameter-like) and transient (activation-like)
        # blocks appear.
        assert "long_lived_hot" in kinds
        assert kinds & {"bursty", "intermittent"}
        assert hotness.prefetch_candidates()


class TestFigure14Shape:
    """Single-GPU memory timeline has the ramp-up / peak / ramp-down shape."""

    def test_timeline_tool_reconstructs_allocator_curve(self):
        timeline = MemoryTimelineTool()
        result = api.run("gpt2", device="a100", mode="train", tools=[timeline], batch_size=2)
        device_timeline = timeline.timeline(result.runtime.device.index)
        assert device_timeline.event_count > 500
        usages = [usage for _t, usage in device_timeline.samples]
        peak_index = usages.index(max(usages))
        assert 0 < peak_index < len(usages) - 1
        assert usages[-1] < max(usages)
        assert device_timeline.peak_bytes == result.ctx.allocator.stats.peak_allocated_bytes


class TestFigure15Shape:
    """Megatron GPT-2 two-GPU parallelism: DP/TP symmetric, TP peak lower, PP asymmetric."""

    def test_dp_tp_pp_memory_relationships(self):
        dp = DataParallelRunner(DeviceSet([A100, A100]), SMALL_CONFIG).run_iteration()
        tp = TensorParallelRunner(DeviceSet([A100, A100]), SMALL_CONFIG).run_iteration()
        pp = PipelineParallelRunner(DeviceSet([A100, A100]), SMALL_CONFIG).run_iteration()

        dp_peaks, tp_peaks, pp_peaks = dp.peak_bytes(), tp.peak_bytes(), pp.peak_bytes()
        # DP and TP are symmetric across the two GPUs.
        assert dp_peaks[0] == pytest.approx(dp_peaks[1], rel=0.02)
        assert tp_peaks[0] == pytest.approx(tp_peaks[1], rel=0.02)
        # TP's peak is clearly below DP's (model sharding).
        assert max(tp_peaks) < max(dp_peaks)
        # PP is asymmetric: the last stage (LM head + logits) is heavier.
        assert pp_peaks[1] > pp_peaks[0]

    def test_megatron_tensors_are_longer_lived_than_single_gpu(self):
        """Megatron-style training keeps more memory live at the end of the
        iteration than it started with (persistent grads/communication buffers),
        matching the paper's observation about tensor persistence."""
        dp = DataParallelRunner(DeviceSet([A100, A100]), SMALL_CONFIG).run_iteration()
        timeline = dp.usage_timelines()[0]
        assert timeline[-1][1] >= timeline[0][1]


class TestGpuPreprocessingConsistency:
    """The GPU-resident result map agrees with the kernels' declared behaviour."""

    def test_profiles_match_launch_metadata(self):
        mem = MemoryCharacteristicsTool()
        result = api.run("resnet18", device="a100", tools=[mem], batch_size=2)
        launches = result.runtime.kernel_launches
        assert len(mem.kernel_working_sets) == len(launches)
        assert sum(mem.kernel_working_sets) == sum(l.working_set_bytes for l in launches)
        assert sum(mem.kernel_footprints) == sum(l.memory_footprint_bytes for l in launches)
