"""Multi-GPU parallelism as a first-class ProfileSpec dimension.

The acceptance criteria of the parallelism integration:

* a TP profile recorded to a trace and replayed offline produces
  **byte-identical per-rank reports** to the live run;
* a campaign sweeping ``parallelism`` over {dp, tp, pp} x 2 ranks runs
  through the scheduler and is answered **entirely from the cache** on rerun;
* per-rank trace slicing by ``device_index`` recovers exactly one rank's
  event stream.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import ParallelismSpec, ProfileSpec, api, pasta
from repro.campaign import CampaignScheduler, CampaignSpec, ResultCache
from repro.core.registry import REGISTRY
from repro.core.serialization import stable_json_dumps
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2
from repro.errors import ReproError, TraceError
from repro.replay.reader import TraceReader

#: Deliberately small Megatron configuration so parallel profiles stay fast.
SMALL_CONFIG = MegatronConfig(
    vocab_size=2048, hidden=256, num_layers=4, num_heads=8, seq_length=128,
    batch_size=2,
)

SMALL_MODEL = "megatron_small_test"


@pytest.fixture(autouse=True, scope="module")
def small_megatron():
    REGISTRY.register("models", SMALL_MODEL, lambda: MegatronGpt2(SMALL_CONFIG),
                      overwrite=True)
    yield
    REGISTRY.namespace("models").unregister(SMALL_MODEL)


def canonical_bytes(reports) -> bytes:
    return stable_json_dumps(reports).encode("utf-8")


# ---------------------------------------------------------------------- #
# ParallelismSpec: validation, round-trip, identity
# ---------------------------------------------------------------------- #
class TestParallelismSpec:
    def test_strategy_normalisation_and_aliases(self):
        assert ParallelismSpec("tensor_parallel").strategy == "tp"
        assert ParallelismSpec("DP").strategy == "dp"
        assert ParallelismSpec("pipeline-parallel").strategy == "pp"

    def test_unknown_strategy_suggests(self):
        with pytest.raises(ReproError, match="strategy"):
            ParallelismSpec("expert_parallel")

    def test_world_size_and_devices_validation(self):
        with pytest.raises(ReproError, match="world_size"):
            ParallelismSpec("dp", world_size=1)
        with pytest.raises(ReproError, match="one device per rank"):
            ParallelismSpec("dp", world_size=2, devices=("a100",))
        with pytest.raises(ReproError, match="microbatches"):
            ParallelismSpec("pp", microbatches=0)

    def test_resolved_devices_replicates_the_default(self):
        assert ParallelismSpec("tp").resolved_devices("a100") == ("a100", "a100")
        explicit = ParallelismSpec("tp", devices=("a100", "rtx3060"))
        assert explicit.resolved_devices("a100") == ("a100", "rtx3060")

    def test_spec_json_round_trip_includes_parallelism(self):
        spec = ProfileSpec(
            model=SMALL_MODEL, mode="train", tools=("kernel_frequency",),
            parallelism=ParallelismSpec("tp", world_size=2),
        )
        assert ProfileSpec.from_json(spec.to_json()) == spec
        assert spec.canonical()["parallelism"]["strategy"] == "tp"

    def test_parallelism_accepts_dict_and_bare_strategy(self):
        from_dict = ProfileSpec(model=SMALL_MODEL, mode="train",
                                parallelism={"strategy": "pp", "microbatches": 4})
        assert from_dict.parallelism == ParallelismSpec("pp", microbatches=4)
        bare = ProfileSpec(model=SMALL_MODEL, mode="train", parallelism="dp")
        assert bare.parallelism == ParallelismSpec("dp")

    def test_parallel_profiles_must_train(self):
        with pytest.raises(ReproError, match="train"):
            ProfileSpec(model=SMALL_MODEL, mode="inference", parallelism="tp")

    def test_digest_distinguishes_strategies_and_world_sizes(self):
        base = ProfileSpec(model=SMALL_MODEL, mode="train", parallelism="dp")
        version = repro.__version__
        assert base.digest(version) != base.with_parallelism("tp").digest(version)
        assert (base.digest(version)
                != base.with_parallelism("dp", world_size=3).digest(version))
        assert base.digest(version) != base.replace(parallelism=None).digest(version)

    def test_workload_signature_includes_parallelism(self):
        single = ProfileSpec(model=SMALL_MODEL, mode="train")
        tp = single.with_parallelism("tp")
        assert single.workload_signature() != tp.workload_signature()
        assert tp.workload_signature() == tp.replace(tools=("hotness",)).workload_signature()

    def test_label_carries_the_strategy(self):
        spec = ProfileSpec(model=SMALL_MODEL, mode="train", parallelism="pp")
        assert spec.label().endswith("/ppx2")

    def test_builder_parallel_defaults_to_train(self):
        spec = pasta.profile(SMALL_MODEL).parallel("tp", world_size=2).build()
        assert spec.mode == "train"
        assert spec.parallelism == ParallelismSpec("tp", world_size=2)

    def test_microbatches_is_identity_only_for_pp(self):
        # dp/tp ignore microbatches at execution time, so two dp specs
        # differing only there are the SAME configuration: equal, same
        # digest, same workload signature (no spurious cache misses).
        a = ProfileSpec(model=SMALL_MODEL, mode="train",
                        parallelism=ParallelismSpec("dp", microbatches=2))
        b = ProfileSpec(model=SMALL_MODEL, mode="train",
                        parallelism=ParallelismSpec("dp", microbatches=4))
        assert a == b
        assert a.digest(repro.__version__) == b.digest(repro.__version__)
        assert a.workload_signature() == b.workload_signature()
        # pp genuinely varies with it.
        pp2 = ParallelismSpec("pp", microbatches=2)
        pp4 = ParallelismSpec("pp", microbatches=4)
        assert pp2 != pp4


# ---------------------------------------------------------------------- #
# live execution: one session per rank, Figure-15 semantics
# ---------------------------------------------------------------------- #
class TestLiveParallelProfiles:
    @pytest.fixture(scope="class")
    def tp_result(self):
        return pasta.profile(SMALL_MODEL).parallel("tp", world_size=2).run()

    def test_one_instrumented_session_per_rank(self, tp_result):
        assert len(tp_result.sessions) == 2
        for session, rank_report in zip(tp_result.sessions, tp_result.rank_reports()):
            assert "memory_timeline" in rank_report
            assert "overhead" in rank_report

    def test_report_structure_and_symmetry(self, tp_result):
        reports = tp_result.reports()
        assert set(reports) == {"parallelism", "ranks", "cross_rank"}
        assert set(reports["ranks"]) == {"rank0", "rank1"}
        cross = reports["cross_rank"]
        assert cross["peak_symmetry"] == pytest.approx(1.0, rel=0.02)

    def test_spec_tools_attach_per_rank(self):
        result = (pasta.profile(SMALL_MODEL)
                  .parallel("dp", world_size=2)
                  .with_tools("kernel_frequency")
                  .run())
        for rank in range(2):
            assert result.report("kernel_frequency", rank)["total_launches"] > 0
        # Per-rank instances are independent objects.
        assert result.tool("kernel_frequency", 0) is not result.tool("kernel_frequency", 1)

    def test_dp_tp_pp_peak_relations(self):
        results = {
            strategy: pasta.profile(SMALL_MODEL).parallel(strategy).run()
            for strategy in ("dp", "tp", "pp")
        }
        dp = results["dp"].reports()["cross_rank"]
        tp = results["tp"].reports()["cross_rank"]
        pp = results["pp"].reports()["cross_rank"]
        assert dp["peak_symmetry"] == pytest.approx(1.0, rel=0.02)
        assert tp["peak_symmetry"] == pytest.approx(1.0, rel=0.02)
        assert tp["max_peak_bytes"] < 0.8 * dp["max_peak_bytes"]
        assert pp["last_over_first_peak"] > 1.0

    def test_summary_rolls_up_across_ranks(self, tp_result):
        summary = tp_result.summary.as_dict()
        ranks = summary["ranks"]
        assert len(ranks) == 2
        assert summary["kernel_launches"] == sum(r["kernel_launches"] for r in ranks)
        assert summary["peak_allocated_bytes"] == max(
            r["peak_allocated_bytes"] for r in ranks)
        assert summary["parallelism"] == {"strategy": "tp", "world_size": 2}

    def test_run_accepts_parallelism_kwarg_and_defaults_to_train(self):
        result = api.run(SMALL_MODEL, parallelism="dp")
        assert result.spec.mode == "train"
        assert result.spec.parallelism == ParallelismSpec("dp")

    def test_unsupported_model_raises_cleanly(self):
        with pytest.raises(ReproError, match="does not support multi-GPU"):
            api.run("alexnet", mode="train", parallelism="dp")

    def test_programmatic_escape_hatches_rejected(self):
        from repro.tools import KernelFrequencyTool

        spec = ProfileSpec(model=SMALL_MODEL, mode="train", parallelism="dp")
        with pytest.raises(ReproError, match="per rank"):
            api.execute(spec, extra_tools=[KernelFrequencyTool()])

    def test_heterogeneous_device_sets_resolve_per_rank(self):
        result = api.run(
            SMALL_MODEL,
            parallelism=ParallelismSpec("dp", devices=("a100", "rtx3060")),
        )
        names = [s["device"] for s in result.summary.as_dict()["ranks"]]
        assert names == ["a100", "rtx3060"]


# ---------------------------------------------------------------------- #
# acceptance: record once, replay byte-identically, slice per rank
# ---------------------------------------------------------------------- #
class TestParallelRecordReplay:
    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("parallel-traces") / "tp.pastatrace"
        spec = ProfileSpec(
            model=SMALL_MODEL, mode="train",
            tools=("kernel_frequency", "memory_characteristics"),
            parallelism=ParallelismSpec("tp", world_size=2),
        )
        live = api.execute(spec.with_record(trace))
        return spec, trace, live

    def test_replay_reports_are_byte_identical_to_live(self, recorded):
        spec, trace, live = recorded
        replayed = api.replay(trace, spec)
        assert canonical_bytes(replayed.reports()) == canonical_bytes(live.reports())
        assert (canonical_bytes(replayed.rank_reports()[0])
                == canonical_bytes(live.rank_reports()[0]))
        assert replayed.events_replayed > 0

    def test_trace_metadata_carries_per_rank_device_indices(self, recorded):
        _spec, trace, live = recorded
        reader = TraceReader(trace)
        assert reader.header.workload["device_indices"] == live.device_indices
        assert reader.header.workload["rank_devices"] == ["a100", "a100"]

    def test_events_slice_by_device_index(self, recorded):
        _spec, trace, live = recorded
        reader = TraceReader(trace)
        total = sum(1 for _ in reader.events())
        per_rank = []
        for index in live.device_indices:
            events = list(reader.events(device_index=index))
            assert events, f"no events for device {index}"
            assert all(e.device_index == index for e in events)
            per_rank.append(len(events))
        # Every recorded event belongs to exactly one rank.
        assert sum(per_rank) == total

    def test_slice_to_materialises_one_rank(self, recorded, tmp_path):
        _spec, trace, live = recorded
        reader = TraceReader(trace)
        rank0 = live.device_indices[0]
        out = tmp_path / "rank0.pastatrace"
        footer = reader.slice_to(out, device_index=rank0)
        sliced = TraceReader(out)
        assert sliced.header.workload["sliced_device_index"] == rank0
        assert footer.event_count == sum(1 for _ in reader.events(device_index=rank0))
        assert all(e.device_index == rank0 for e in sliced.events())

    def test_replay_of_single_gpu_trace_fails_loudly(self, tmp_path):
        trace = tmp_path / "single.pastatrace"
        api.execute(ProfileSpec(model="alexnet", batch_size=2).with_record(trace))
        parallel_spec = ProfileSpec(model=SMALL_MODEL, mode="train", parallelism="tp")
        with pytest.raises(TraceError, match="multi-GPU"):
            api.replay(trace, parallel_spec)

    def test_world_size_mismatch_fails_loudly(self, recorded):
        spec, trace, _live = recorded
        mismatched = spec.with_parallelism("tp", world_size=3)
        with pytest.raises(TraceError, match="ranks"):
            api.replay(trace, mismatched)

    def test_failed_session_construction_finalises_the_shared_writer(self, tmp_path):
        # Duplicate tool names make per-rank session construction raise
        # after the shared writer opened its file; the writer must still be
        # aborted so the trace is a readable, explicitly-incomplete file
        # rather than a leaked header-only fragment.
        trace = tmp_path / "aborted.pastatrace"
        spec = ProfileSpec(
            model=SMALL_MODEL, mode="train",
            tools=("kernel_frequency", "kernel_frequency"),
            parallelism=ParallelismSpec("tp", world_size=2),
        )
        with pytest.raises(Exception, match="kernel_frequency"):
            api.execute(spec.with_record(trace))
        reader = TraceReader(trace, allow_incomplete=True)
        assert reader.footer.complete is False
        assert "PastaError" in reader.footer.abort_reason


# ---------------------------------------------------------------------- #
# acceptance: campaign sweep over {dp, tp, pp} with cache hits on rerun
# ---------------------------------------------------------------------- #
class TestParallelCampaigns:
    @pytest.fixture()
    def sweep(self):
        return CampaignSpec(
            name="parallelism-sweep",
            models=[SMALL_MODEL],
            modes=["train"],
            tools=["kernel_frequency"],
            parallelisms=["dp", "tp", "pp"],
        )

    def test_grid_expands_the_parallelism_axis(self, sweep):
        labels = [job.label() for job in sweep.expand()]
        assert len(labels) == 3
        assert any(label.endswith("/dpx2") for label in labels)
        assert any(label.endswith("/tpx2") for label in labels)
        assert any(label.endswith("/ppx2") for label in labels)

    def test_campaign_json_round_trip(self, sweep):
        clone = CampaignSpec.from_json(json.dumps(sweep.to_dict()))
        assert clone.expand() == sweep.expand()

    def test_sweep_runs_and_reruns_from_cache(self, sweep, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scheduler = CampaignScheduler(cache=cache)
        first = scheduler.run(sweep)
        assert first.failed == 0 and first.executed == 3
        for record in first.records():
            assert set(record["reports"]) == {"parallelism", "ranks", "cross_rank"}
        second = scheduler.run(sweep)
        assert second.cached == 3 and second.executed == 0
        assert (canonical_bytes(second.records()[0]["reports"])
                == canonical_bytes(first.records()[0]["reports"]))

    def test_replay_mode_simulates_each_parallel_workload_once(self):
        spec = CampaignSpec(
            name="parallel-replay",
            models=[SMALL_MODEL],
            modes=["train"],
            tools=["kernel_frequency", "memory_timeline"],
            parallelisms=["tp"],
            execution="replay",
        )
        result = CampaignScheduler().run(spec)
        assert result.failed == 0 and result.total == 2
        assert result.workloads_recorded == 1
        reports = [record["reports"] for record in result.records()]
        assert all(set(r) == {"parallelism", "ranks", "cross_rank"} for r in reports)


# ---------------------------------------------------------------------- #
# CLI: pasta profile --parallel
# ---------------------------------------------------------------------- #
class TestParallelCli:
    def test_profile_parallel_json(self, capsys):
        from repro.commands import main

        rc = main(["profile", SMALL_MODEL, "--parallel", "tp", "--world-size", "2",
                   "-t", "kernel_frequency", "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) >= {"parallelism", "ranks", "cross_rank", "run"}
        assert document["run"]["parallelism"] == {"strategy": "tp", "world_size": 2}

    def test_profile_parallel_implies_train(self, capsys):
        from repro.commands import main

        rc = main(["profile", SMALL_MODEL, "--parallel", "dp",
                   "-t", "memory_timeline", "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["run"]["mode"] == "train"

    def test_parallel_only_flags_require_parallel(self, capsys):
        from repro.commands import main

        for flag, value in (("--world-size", "4"),
                            ("--parallel-devices", "a100,a100"),
                            ("--microbatches", "4")):
            with pytest.raises(SystemExit):
                main(["profile", SMALL_MODEL, "-t", "kernel_frequency",
                      flag, value])
            assert "--parallel" in capsys.readouterr().err

    def test_trace_slice_by_device_index(self, tmp_path, capsys):
        from repro.commands import main

        trace = tmp_path / "cli.pastatrace"
        rc = main(["profile", SMALL_MODEL, "--parallel", "dp",
                   "-t", "memory_timeline", "--record", str(trace), "--json"])
        assert rc == 0
        capsys.readouterr()
        reader = TraceReader(trace)
        rank0 = int(reader.header.workload["device_indices"][0])
        out = tmp_path / "rank0.pastatrace"
        rc = main(["trace", "slice", str(trace), "-o", str(out),
                   "--device-index", str(rank0)])
        assert rc == 0
        assert all(e.device_index == rank0 for e in TraceReader(out).events())
