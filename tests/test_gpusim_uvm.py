"""Tests for the UVM (unified virtual memory) simulation."""

from __future__ import annotations

import pytest

from repro.errors import UvmError
from repro.gpusim.device import GpuDevice, MiB, RTX3060
from repro.gpusim.uvm import UVM_PAGE_BYTES, UvmConfig, UvmManager


def make_uvm(capacity_pages: int = 8) -> UvmManager:
    device = GpuDevice(spec=RTX3060)
    return UvmManager(device, device_capacity_bytes=capacity_pages * UVM_PAGE_BYTES)


class TestRegions:
    def test_register_and_footprint(self):
        uvm = make_uvm()
        uvm.register_region(0x1000_0000, 10 * MiB)
        uvm.register_region(0x2000_0000, 6 * MiB)
        assert uvm.managed_bytes == 16 * MiB
        assert uvm.is_managed_address(0x1000_0000 + MiB)
        assert not uvm.is_managed_address(0x3000_0000)

    def test_register_rejects_empty_region(self):
        with pytest.raises(UvmError):
            make_uvm().register_region(0x1000, 0)

    def test_unregister_drops_residency(self):
        uvm = make_uvm()
        region = uvm.register_region(0x1000_0000, 4 * MiB)
        uvm.access_range(region.address, region.size)
        assert uvm.resident_pages > 0
        uvm.unregister_region(region)
        assert uvm.resident_pages == 0

    def test_unregister_unknown_region_raises(self):
        uvm = make_uvm()
        region = uvm.register_region(0x1000_0000, 4 * MiB)
        uvm.unregister_region(region)
        with pytest.raises(UvmError):
            uvm.unregister_region(region)

    def test_oversubscription_factor(self):
        uvm = make_uvm(capacity_pages=4)  # 8 MiB capacity
        uvm.register_region(0x1000_0000, 24 * MiB)
        assert uvm.oversubscription_factor == pytest.approx(3.0)


class TestFaultDrivenAccess:
    def test_first_touch_faults_and_migrates(self):
        uvm = make_uvm()
        uvm.register_region(0x1000_0000, 4 * MiB)
        cost = uvm.access_range(0x1000_0000, 4 * MiB)
        assert cost > 0
        assert uvm.stats.page_faults >= 1
        assert uvm.stats.pages_migrated_on_fault == 2
        assert uvm.resident_pages == 2

    def test_second_touch_is_free(self):
        uvm = make_uvm()
        uvm.register_region(0x1000_0000, 4 * MiB)
        uvm.access_range(0x1000_0000, 4 * MiB)
        cost = uvm.access_range(0x1000_0000, 4 * MiB)
        assert cost == 0.0

    def test_empty_access_is_free(self):
        uvm = make_uvm()
        assert uvm.access_range(0x1000_0000, 0) == 0.0

    def test_eviction_under_pressure(self):
        uvm = make_uvm(capacity_pages=2)
        uvm.register_region(0x1000_0000, 16 * MiB)
        uvm.access_range(0x1000_0000, 16 * MiB)
        # Only two pages fit; the rest were evicted along the way.
        assert uvm.resident_pages <= 2
        assert uvm.stats.pages_evicted > 0

    def test_refaults_are_counted_as_thrashing(self):
        uvm = make_uvm(capacity_pages=2)
        base = 0x1000_0000
        uvm.register_region(base, 16 * MiB)
        uvm.access_range(base, 16 * MiB)
        uvm.access_range(base, 4 * MiB)  # these pages were evicted earlier
        assert uvm.stats.refaults > 0


class TestPrefetchAndPinning:
    def test_prefetch_makes_pages_resident_cheaply(self):
        uvm = make_uvm()
        base = 0x1000_0000
        uvm.register_region(base, 8 * MiB)
        prefetch_cost = uvm.prefetch_range(base, 8 * MiB)
        assert uvm.resident_pages == 4
        access_cost = uvm.access_range(base, 8 * MiB)
        assert access_cost == 0.0
        # Prefetch (overlapped, no fault handling) is cheaper than faulting the
        # same pages on demand.
        faulting = make_uvm()
        faulting.register_region(base, 8 * MiB)
        fault_cost = faulting.access_range(base, 8 * MiB)
        assert prefetch_cost < fault_cost

    def test_prefetch_already_resident_is_free(self):
        uvm = make_uvm()
        base = 0x1000_0000
        uvm.register_region(base, 4 * MiB)
        uvm.prefetch_range(base, 4 * MiB)
        assert uvm.prefetch_range(base, 4 * MiB) == 0.0

    def test_prefetch_under_pressure_is_less_overlapped(self):
        config = UvmConfig()
        # Plenty of room: cheap prefetch.
        roomy = make_uvm(capacity_pages=16)
        roomy.register_region(0x1000_0000, 8 * MiB)
        cheap = roomy.prefetch_range(0x1000_0000, 8 * MiB)
        # Tight memory: the same prefetch must evict and loses its overlap.
        tight = UvmManager(GpuDevice(spec=RTX3060), device_capacity_bytes=4 * UVM_PAGE_BYTES,
                           config=config)
        tight.register_region(0x1000_0000, 8 * MiB)
        tight.register_region(0x2000_0000, 8 * MiB)
        tight.prefetch_range(0x2000_0000, 8 * MiB)
        pressured = tight.prefetch_range(0x1000_0000, 8 * MiB)
        assert pressured > cheap

    def test_pinned_pages_survive_eviction(self):
        uvm = make_uvm(capacity_pages=4)
        hot = 0x1000_0000
        cold = 0x2000_0000
        uvm.register_region(hot, 4 * MiB)
        uvm.register_region(cold, 32 * MiB)
        uvm.prefetch_range(hot, 4 * MiB)
        uvm.advise_pin(hot, 4 * MiB)
        uvm.access_range(cold, 32 * MiB)
        assert uvm.is_resident(hot)

    def test_unpin_allows_eviction(self):
        uvm = make_uvm(capacity_pages=2)
        hot, cold = 0x1000_0000, 0x2000_0000
        uvm.register_region(hot, 4 * MiB)
        uvm.register_region(cold, 32 * MiB)
        uvm.prefetch_range(hot, 4 * MiB)
        uvm.advise_pin(hot, 4 * MiB)
        uvm.advise_unpin(hot, 4 * MiB)
        uvm.access_range(cold, 32 * MiB)
        assert not uvm.is_resident(hot)

    def test_explicit_evict_range(self):
        uvm = make_uvm()
        base = 0x1000_0000
        uvm.register_region(base, 4 * MiB)
        uvm.prefetch_range(base, 4 * MiB)
        cost = uvm.evict_range(base, 4 * MiB)
        assert cost >= 0.0
        assert not uvm.is_resident(base)

    def test_reset_residency(self):
        uvm = make_uvm()
        base = 0x1000_0000
        uvm.register_region(base, 4 * MiB)
        uvm.access_range(base, 4 * MiB)
        uvm.reset_residency()
        assert uvm.resident_pages == 0
        assert uvm.stats.page_faults == 0


class TestHelpers:
    def test_pages_for_ranges(self):
        uvm = make_uvm()
        pages = uvm.pages_for_ranges([(0, UVM_PAGE_BYTES), (UVM_PAGE_BYTES, UVM_PAGE_BYTES)])
        assert len(pages) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(UvmError):
            UvmManager(GpuDevice(spec=RTX3060), device_capacity_bytes=0)

    def test_resident_bytes(self):
        uvm = make_uvm()
        uvm.register_region(0x1000_0000, 4 * MiB)
        uvm.prefetch_range(0x1000_0000, 4 * MiB)
        assert uvm.resident_bytes() == 2 * UVM_PAGE_BYTES
