"""Tests for the driver-level device memory allocator and memory objects."""

from __future__ import annotations

import pytest

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.gpusim.device import GpuDevice, MiB, RTX3060
from repro.gpusim.memory import (
    ALLOCATION_ALIGNMENT,
    DeviceMemoryAllocator,
    MemoryKind,
    align_up,
)


@pytest.fixture
def allocator() -> DeviceMemoryAllocator:
    return DeviceMemoryAllocator(GpuDevice(spec=RTX3060))


class TestAlignUp:
    def test_rounds_up_to_alignment(self):
        assert align_up(1) == ALLOCATION_ALIGNMENT
        assert align_up(512) == 512
        assert align_up(513) == 1024

    def test_zero_and_negative_get_minimum(self):
        assert align_up(0) == ALLOCATION_ALIGNMENT
        assert align_up(-5) == ALLOCATION_ALIGNMENT

    def test_custom_alignment(self):
        assert align_up(3 * MiB, 2 * MiB) == 4 * MiB


class TestAllocation:
    def test_allocate_returns_aligned_object(self, allocator):
        obj = allocator.allocate(1000)
        assert obj.size == align_up(1000)
        assert obj.live
        assert obj.kind is MemoryKind.DEVICE

    def test_addresses_are_disjoint(self, allocator):
        a = allocator.allocate(4096)
        b = allocator.allocate(4096)
        assert not a.overlaps(b.address, b.size)
        assert a.address != b.address

    def test_live_bytes_and_peak_tracking(self, allocator):
        a = allocator.allocate(10 * MiB)
        b = allocator.allocate(20 * MiB)
        assert allocator.live_bytes == a.size + b.size
        allocator.free(a)
        assert allocator.live_bytes == b.size
        assert allocator.peak_bytes == a.size + b.size

    def test_out_of_memory_raises(self, allocator):
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(RTX3060.memory_bytes + MiB)

    def test_managed_allocations_do_not_count_against_device_capacity(self, allocator):
        obj = allocator.allocate(RTX3060.memory_bytes * 2, kind=MemoryKind.MANAGED)
        assert obj.kind is MemoryKind.MANAGED
        assert allocator.live_bytes == 0
        assert allocator.live_managed_bytes == obj.size

    def test_footprint_includes_freed_objects(self, allocator):
        a = allocator.allocate(MiB)
        allocator.free(a)
        b = allocator.allocate(2 * MiB)
        assert allocator.footprint_bytes() == a.size + b.size


class TestFree:
    def test_double_free_raises(self, allocator):
        obj = allocator.allocate(4096)
        allocator.free(obj)
        with pytest.raises(InvalidAddressError):
            allocator.free(obj)

    def test_free_unknown_object_raises(self, allocator):
        other = DeviceMemoryAllocator(GpuDevice(spec=RTX3060))
        obj = other.allocate(4096)
        with pytest.raises(InvalidAddressError):
            allocator.free(obj)

    def test_free_by_address(self, allocator):
        obj = allocator.allocate(4096)
        freed = allocator.free_by_address(obj.address)
        assert freed.object_id == obj.object_id
        assert not obj.live

    def test_free_by_interior_address_raises(self, allocator):
        obj = allocator.allocate(4096)
        with pytest.raises(InvalidAddressError):
            allocator.free_by_address(obj.address + 8)


class TestLookup:
    def test_lookup_finds_containing_object(self, allocator):
        obj = allocator.allocate(1 * MiB)
        assert allocator.lookup(obj.address) is obj
        assert allocator.lookup(obj.address + obj.size // 2) is obj
        assert allocator.lookup(obj.end - 1) is obj

    def test_lookup_miss_returns_none(self, allocator):
        obj = allocator.allocate(1 * MiB)
        assert allocator.lookup(obj.end + 10 * MiB) is None
        assert allocator.lookup(obj.address - 1) is None

    def test_lookup_respects_liveness(self, allocator):
        obj = allocator.allocate(1 * MiB)
        allocator.free(obj)
        assert allocator.lookup(obj.address) is None
        assert allocator.lookup(obj.address, live_only=False) is obj

    def test_guard_gap_prevents_adjacent_attribution(self, allocator):
        a = allocator.allocate(4096)
        allocator.allocate(4096)
        # An address just past the end of `a` must not resolve to either object.
        assert allocator.lookup(a.end + 1) is None

    def test_live_objects_iteration(self, allocator):
        a = allocator.allocate(4096)
        b = allocator.allocate(4096)
        allocator.free(a)
        live_ids = {o.object_id for o in allocator.live_objects()}
        assert live_ids == {b.object_id}
        all_ids = {o.object_id for o in allocator.all_objects()}
        assert all_ids == {a.object_id, b.object_id}
