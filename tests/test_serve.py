"""Profiling-as-a-service: daemon, job lifecycle, client, and parity tests.

The acceptance spine of PR 10:

* submit → status → stream → result, with remote reports **byte-identical**
  to a local run of the same spec;
* resubmitting an identical spec is a **pure cache hit** — zero simulation;
* cancel of queued and running jobs (profile and campaign);
* per-namespace quota rejection as a 429-style JSONL error record;
* a client reconnect resumes a result stream mid-campaign without
  duplicates or gaps;
* manager shutdown + restart over the same data dir re-enqueues unfinished
  jobs and never re-simulates finished digests (the ``kill -9`` flavour
  lives in ``tests/test_serve_cli.py``).

Everything runs against an in-process :class:`PastaDaemon` on an ephemeral
port; slow jobs are manufactured with the PR 8 fault harness (a ``slow``
rule at the ``runner.execute`` site), not with sleeps in test code.
"""

from __future__ import annotations

import itertools
import time
from pathlib import Path

import pytest

from repro import pasta
from repro.campaign.faults import FaultInjector, FaultPlan, FaultRule, faults_scope
from repro.core.serialization import json_sanitize, stable_json_dumps
from repro.errors import ReproError
from repro.serve import JobManager, PastaDaemon, QuotaExceeded, ServeError, connect
from repro.serve.jobs import classify_submission

#: The tiny spec most tests submit.
SPEC = {"model": "alexnet", "tools": ["hotness"], "iterations": 1}

#: A 4-cell campaign over the same workload (distinct window knobs).
CAMPAIGN = {
    "name": "serve-test",
    "models": ["alexnet"],
    "tools": [],
    "iterations": 1,
    "knob_sweep": [{"end_grid_id": 20_000_000 + i} for i in range(4)],
}


def slow_execution(delay_s: float = 0.5) -> FaultInjector:
    """A fault plan that stalls every simulation by ``delay_s``."""
    return FaultInjector(FaultPlan(rules=(
        FaultRule(site="runner.execute", kind="slow", delay_s=delay_s, times=0),
    )))


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.02):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


@pytest.fixture()
def daemon(tmp_path: Path):
    with PastaDaemon(tmp_path / "serve", workers=2) as running:
        yield running


# ---------------------------------------------------------------------- #
# lifecycle + parity
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_submit_status_stream_result(self, daemon: PastaDaemon) -> None:
        client = connect(daemon.url)
        handle = client.profile("alexnet").with_tools("hotness").iterations(1).submit()
        assert handle.id.startswith("job-")

        result = handle.result(timeout=120)
        status = handle.status()
        assert status["state"] == "done"
        assert status["kind"] == "profile"
        assert status["namespace"] == "default"
        assert result.cache_hit is False
        assert result.digest == status["digest"]

        records = list(handle.stream())
        types = [r["type"] for r in records]
        assert types == ["job", "job", "result", "job"]
        events = [r.get("event") for r in records if r["type"] == "job"]
        assert events == ["queued", "started", "finished"]
        assert all(r["v"] == 1 for r in records)

    def test_remote_reports_byte_identical_to_local(self, daemon: PastaDaemon) -> None:
        remote = (
            connect(daemon.url)
            .profile("alexnet").with_tools("hotness").iterations(1)
            .submit().result(timeout=120)
        )
        local = pasta.profile("alexnet").with_tools("hotness").iterations(1).run()
        local_reports = stable_json_dumps(json_sanitize(local.reports()))
        remote_reports = stable_json_dumps(remote.reports())
        assert remote_reports == local_reports
        local_summary = stable_json_dumps(json_sanitize(local.summary.as_dict()))
        assert stable_json_dumps(remote.summary) == local_summary

    def test_resubmit_is_pure_cache_hit(self, daemon: PastaDaemon) -> None:
        client = connect(daemon.url)
        first = client.submit(SPEC).result(timeout=120)
        assert first.cache_hit is False
        assert daemon.manager.executed == 1

        second = client.submit(SPEC).result(timeout=120)
        assert second.cache_hit is True
        # Zero simulation: the executed counter did not move.
        assert daemon.manager.executed == 1
        assert daemon.manager.cache_hits == 1
        assert stable_json_dumps(second.record) == stable_json_dumps(first.record)

    def test_campaign_job_streams_progress(self, daemon: PastaDaemon) -> None:
        client = connect(daemon.url)
        handle = client.submit(CAMPAIGN)
        result = handle.result(timeout=300)
        assert result.total == 4
        assert result.executed == 4
        assert result.failed == 0
        progress = [r for r in handle.stream() if r["type"] == "progress"]
        assert [p["index"] for p in progress] == [0, 1, 2, 3]
        assert all(p["total"] == 4 for p in progress)
        # Each cell's full record is content-addressed behind the cache API.
        cell = result.cells[0]
        fetched = result.cell_record(cell["digest"])
        assert fetched is not None and fetched["status"] == "ok"

        # Identical campaign rerun: all four digests answered from cache.
        rerun = client.submit(CAMPAIGN).result(timeout=300)
        assert rerun.cached == 4 and rerun.executed == 0
        assert daemon.manager.executed == 4

    def test_remote_builder_redirects_local_verbs(self, daemon: PastaDaemon) -> None:
        builder = connect(daemon.url).profile("alexnet")
        with pytest.raises(ServeError, match=r"\.submit\(\)"):
            builder.run()
        with pytest.raises(ServeError, match="replay locally"):
            builder.replay(object())
        with pytest.raises(ServeError, match="record"):
            builder.record("trace.pasta")

    def test_record_to_rejected_at_submit(self, daemon: PastaDaemon) -> None:
        with pytest.raises(ServeError, match="record_to") as info:
            connect(daemon.url).submit({**SPEC, "record_to": "trace.pasta"})
        assert info.value.code == 400


# ---------------------------------------------------------------------- #
# cancellation
# ---------------------------------------------------------------------- #
class TestCancel:
    def test_cancel_queued_job(self, tmp_path: Path) -> None:
        with faults_scope(slow_execution(1.0)):
            with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
                client = connect(daemon.url)
                running = client.submit(SPEC)
                wait_for(lambda: running.status()["state"] in ("running", "done"))
                queued = client.submit({**SPEC, "iterations": 2})
                assert queued.status()["state"] == "queued"

                cancelled = queued.cancel()
                # Queued jobs cancel immediately, not at dequeue time.
                assert cancelled["state"] == "cancelled"
                with pytest.raises(ServeError, match="cancelled"):
                    queued.result(timeout=30)
                # The running job is unaffected.
                assert running.result(timeout=120).reports()

    def test_cancel_running_profile_job(self, tmp_path: Path) -> None:
        with faults_scope(slow_execution(1.5)):
            with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
                client = connect(daemon.url)
                handle = client.submit(SPEC)
                wait_for(lambda: handle.status()["state"] == "running")
                assert handle.cancel()["state"] in ("cancelling", "cancelled")
                wait_for(lambda: handle.status()["state"] == "cancelled",
                         timeout=30)
                records = list(handle.stream())
                assert all(r["type"] != "result" for r in records)

    def test_cancel_running_campaign_between_cells(self, tmp_path: Path) -> None:
        with faults_scope(slow_execution(0.4)):
            with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
                handle = connect(daemon.url).submit(CAMPAIGN)
                # Wait until at least one cell completed, then cancel.
                wait_for(lambda: any(
                    r["type"] == "progress"
                    for r in daemon.manager.get(handle.id).events
                ))
                handle.cancel()
                wait_for(lambda: handle.status()["state"] == "cancelled",
                         timeout=30)
                progress = [r for r in handle.stream()
                            if r["type"] == "progress"]
                # Cancelled between cell boundaries: some ran, not all four.
                assert 1 <= len(progress) < 4

    def test_cancel_terminal_job_is_noop(self, daemon: PastaDaemon) -> None:
        handle = connect(daemon.url).submit(SPEC)
        handle.result(timeout=120)
        assert handle.cancel()["state"] == "done"


# ---------------------------------------------------------------------- #
# multi-tenancy: namespaces + quotas
# ---------------------------------------------------------------------- #
class TestQuotas:
    def test_inflight_quota_rejects_with_429(self, tmp_path: Path) -> None:
        with faults_scope(slow_execution(1.5)):
            with PastaDaemon(
                tmp_path / "serve", workers=1, quota_inflight=1
            ) as daemon:
                busy = connect(daemon.url, namespace="team-a")
                first = busy.submit(SPEC)
                with pytest.raises(ServeError, match="in flight") as info:
                    busy.submit({**SPEC, "iterations": 2})
                assert info.value.code == 429

                # Quotas are per namespace: another tenant is unaffected.
                other = connect(daemon.url, namespace="team-b")
                second = other.submit({**SPEC, "iterations": 3})
                assert first.result(timeout=120).reports()
                assert second.result(timeout=120).reports()

    def test_total_quota_counts_finished_jobs(self, tmp_path: Path) -> None:
        with PastaDaemon(tmp_path / "serve", workers=1, quota_total=2) as daemon:
            client = connect(daemon.url)
            client.submit(SPEC).result(timeout=120)
            client.submit(SPEC).result(timeout=120)  # cache hit, still counted
            with pytest.raises(ServeError, match="total submission quota") as info:
                client.submit(SPEC)
            assert info.value.code == 429

    def test_namespace_filtering_and_validation(self, daemon: PastaDaemon) -> None:
        a = connect(daemon.url, namespace="team-a")
        b = connect(daemon.url, namespace="team-b")
        a.submit(SPEC).result(timeout=120)
        b.submit(SPEC).result(timeout=120)
        assert len(a.jobs()) == 1  # scoped to the caller's namespace
        assert len(a.jobs(namespace="team-b")) == 1
        assert len(a.jobs(all_namespaces=True)) == 2
        with pytest.raises(ReproError, match="namespace"):
            connect(daemon.url, namespace="bad/name")


# ---------------------------------------------------------------------- #
# streaming: reconnect + resume
# ---------------------------------------------------------------------- #
class TestStreamResume:
    def test_reconnect_resumes_mid_campaign(self, tmp_path: Path) -> None:
        with faults_scope(slow_execution(0.3)):
            with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
                client = connect(daemon.url)
                handle = client.submit(CAMPAIGN)

                # First connection: read a few records mid-run, then drop it
                # (closing the generator closes the HTTP connection).
                first_chunk = list(itertools.islice(handle.stream(), 3))
                assert len(first_chunk) == 3
                assert handle.status()["state"] in ("running", "done")

                # Reconnect with the cursor: the rest, no dupes and no gaps.
                second_chunk = list(handle.stream(from_index=3))
                replay = list(handle.stream())  # full after-the-fact replay
                combined = first_chunk + second_chunk
                assert [r["type"] for r in combined] == [r["type"] for r in replay]
                assert stable_json_dumps(combined) == stable_json_dumps(replay)
                assert combined[-1]["type"] == "job"
                assert combined[-1]["state"] == "done"

    def test_stream_from_beyond_end_returns_nothing(self, daemon: PastaDaemon) -> None:
        handle = connect(daemon.url).submit(SPEC)
        handle.result(timeout=120)
        total = len(list(handle.stream()))
        assert list(handle.stream(from_index=total)) == []


# ---------------------------------------------------------------------- #
# error surface
# ---------------------------------------------------------------------- #
class TestErrors:
    def test_unknown_job_is_404(self, daemon: PastaDaemon) -> None:
        client = connect(daemon.url)
        with pytest.raises(ServeError, match="unknown job") as info:
            client.status("job-zzzzzz-000000")
        assert info.value.code == 404
        with pytest.raises(ServeError) as info:
            list(client.stream("job-zzzzzz-000000"))
        assert info.value.code == 404

    def test_bad_spec_is_400(self, daemon: PastaDaemon) -> None:
        client = connect(daemon.url)
        with pytest.raises(ServeError, match="mode") as info:
            client.submit({"model": "alexnet", "mode": "bogus"})
        assert info.value.code == 400
        with pytest.raises(ServeError, match="neither") as info:
            client.submit({"nonsense": True})
        assert info.value.code == 400

    def test_failing_job_reports_failed_state(self, daemon: PastaDaemon) -> None:
        # An unknown tool passes spec validation (tools resolve at run time)
        # but fails execution — the job must land in 'failed', not hang.
        handle = connect(daemon.url).submit(
            {"model": "alexnet", "tools": ["no_such_tool"], "iterations": 1})
        with pytest.raises(ServeError, match="failed"):
            handle.result(timeout=120)
        assert handle.status()["state"] == "failed"
        assert "no_such_tool" in str(handle.status()["error"])

    def test_health_endpoint(self, daemon: PastaDaemon) -> None:
        health = connect(daemon.url).health()
        assert health["type"] == "health"
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_classify_submission(self) -> None:
        assert classify_submission(SPEC)[0] == "profile"
        assert classify_submission(CAMPAIGN)[0] == "campaign"
        kind, spec = classify_submission({"kind": "profile", "spec": SPEC})
        assert kind == "profile" and spec == SPEC
        with pytest.raises(ReproError, match="kind"):
            classify_submission({"kind": "bogus", "spec": SPEC})


# ---------------------------------------------------------------------- #
# persistence: restart over the same data dir
# ---------------------------------------------------------------------- #
class TestRestart:
    def test_restart_resumes_unfinished_jobs(self, tmp_path: Path) -> None:
        data = tmp_path / "serve"
        with faults_scope(slow_execution(0.6)):
            first = JobManager(data, workers=1)
            done = first.submit(SPEC)
            queued = [
                first.submit({**SPEC, "iterations": n}) for n in (2, 3)
            ]
            # Let the first job finish, then shut down mid-queue.  The worker
            # may already have picked up the next job before close() lands,
            # but the last one is still queued when the pool stops draining.
            wait_for(lambda: first.get(done.id).terminal, timeout=30)
            first.close()
            unfinished = [j for j in queued if not first.get(j.id).terminal]
            assert unfinished, "expected at least one job left queued"

        second = JobManager(data, workers=1)
        try:
            assert second.resumed == len(unfinished)
            for job in unfinished:
                resumed = second.get(job.id)
                assert resumed.resumed is True
                wait_for(lambda j=resumed: j.terminal, timeout=60)
                assert second.get(job.id).state == "done"
            # The finished job was restored terminal, result intact.
            restored = second.get(done.id)
            assert restored.state == "done" and not restored.resumed
            assert restored.result is not None
            # Never re-simulate a finished digest: resubmitting it hits cache.
            again = second.submit(SPEC)
            wait_for(lambda: second.get(again.id).terminal, timeout=30)
            assert second.get(again.id).cache_hit is True
            # Only the resumed jobs simulated; finished digests never re-ran.
            assert second.executed == len(unfinished)
        finally:
            second.close()

    def test_restart_preserves_namespaces_and_order(self, tmp_path: Path) -> None:
        data = tmp_path / "serve"
        manager = JobManager(data, workers=1)
        job = manager.submit(SPEC, namespace="team-a")
        wait_for(lambda: manager.get(job.id).terminal, timeout=60)
        manager.close()

        reborn = JobManager(data, workers=1)
        try:
            restored = reborn.get(job.id)
            assert restored.namespace == "team-a"
            assert [j.id for j in reborn.jobs()] == [job.id]
            # Job ids keep incrementing past journaled history.
            newer = reborn.submit({**SPEC, "iterations": 2})
            assert int(newer.id.split("-")[1]) > int(job.id.split("-")[1])
        finally:
            reborn.close()


class TestQuotaExceededType:
    def test_quota_exceeded_is_repro_error(self) -> None:
        error = QuotaExceeded("over", namespace="x", quota="inflight")
        assert isinstance(error, ReproError)
        assert error.namespace == "x" and error.quota == "inflight"
