"""Equivalence and stress tests for the fast-path event pipeline (PR 3).

Three properties guard the batched fine-grained pipeline:

* **Batched == unrolled dispatch**: for every bundled tool, replaying the
  same fine-grained event stream through the tool's native batch hooks and
  through a forced per-record unroll produces byte-identical reports.
* **Batched == per-record protocol**: the vendor backends deliver the same
  records in the same order whichever delivery mode is configured, so whole
  sessions agree end to end.
* **Allocator invariants**: the size-indexed, linked-list allocator survives
  alloc/free churn with correct coalescing and the same peak statistics as
  a straightforward reference accounting.
"""

from __future__ import annotations

import random

import pytest

import repro.tools  # noqa: F401  (side effect: tool registration)
from repro.core.events import (
    EventCategory,
    InstructionBatch,
    MemoryAccessBatch,
    MemoryAccessEvent,
)
from repro.core.registry import create_tool, registered_tools
from repro.core.serialization import stable_json_dumps
from repro.core.tool import PastaTool
from repro.dlframework.allocator import CachingAllocator, round_size
from repro.dlframework.tensor import DType
from repro.gpusim.device import A100, MiB
from repro.gpusim.instruction import InstructionKind
from repro.gpusim.runtime import create_runtime
from repro.replay import TraceReader, replay_trace
from repro.vendors.base import ProfilingBackend
from repro import api

#: Bundled tool instances exercising their fine-grained/batch paths where
#: the tool has one (instances with the sampled modes enabled), plus the
#: default configurations.
def _equivalence_toolset() -> list[PastaTool]:
    from repro.tools import InefficiencyLocatorTool, TimeSeriesHotnessTool

    tools = [create_tool(name) for name in registered_tools()]
    tools.append(
        _renamed(TimeSeriesHotnessTool(use_sampled_accesses=True), "hotness_sampled")
    )
    tools.append(
        _renamed(InefficiencyLocatorTool(track_device_records=True),
                 "inefficiency_sampled")
    )
    return tools


def _renamed(tool: PastaTool, name: str) -> PastaTool:
    tool.tool_name = name
    return tool


def _force_unrolled(tool: PastaTool) -> PastaTool:
    """Clone a tool with the base-class (unrolling) batch hooks restored."""
    cls = type(tool)
    unrolled_cls = type(
        f"Unrolled{cls.__name__}",
        (cls,),
        {
            "on_memory_access_batch": PastaTool.on_memory_access_batch,
            "on_instruction_batch": PastaTool.on_instruction_batch,
        },
    )
    clone = unrolled_cls.__new__(unrolled_cls)
    clone.__dict__.update(
        {k: v for k, v in tool.__dict__.items() if k != "_handlers"}
    )
    clone.rebind_handlers()
    return clone


@pytest.fixture(scope="module")
def fine_grained_events(tmp_path_factory):
    """One fine-grained recording, decoded once for every equivalence case."""
    trace = tmp_path_factory.mktemp("pipeline") / "fine.pastatrace"
    api.run("alexnet", device="a100", tools=(), fine_grained=True,
                 batch_size=2, record_to=trace)
    reader = TraceReader(trace)
    events = list(reader.events())
    assert any(isinstance(e, MemoryAccessBatch) for e in events)
    assert any(isinstance(e, InstructionBatch) for e in events)
    return trace, events


class TestBatchedUnrolledEquivalence:
    @pytest.mark.parametrize(
        "tool", _equivalence_toolset(), ids=lambda t: t.tool_name
    )
    def test_reports_identical(self, fine_grained_events, tool):
        trace, events = fine_grained_events
        unrolled = _force_unrolled(tool)
        batched_result = replay_trace(trace, tools=[tool], events=events)
        unrolled_result = replay_trace(trace, tools=[unrolled], events=events)
        batched_report = stable_json_dumps(batched_result.reports())
        unrolled_report = stable_json_dumps(unrolled_result.reports())
        assert batched_report == unrolled_report
        # Guard against vacuous equality: every tool saw events, and the
        # fine-grained subscribers saw the fine-grained stream.
        assert tool.events_received > 0
        if tool.wants(EventCategory.MEMORY_ACCESS_BATCH):
            assert tool.events_received == unrolled.events_received > 100

    def test_unroll_fallback_reaches_per_record_hooks(self):
        seen: list[MemoryAccessEvent] = []

        class LegacyTool(PastaTool):
            """A pre-batching tool: only per-record hooks overridden."""

            tool_name = "legacy"
            subscribed_categories = frozenset({EventCategory.MEMORY_ACCESS})

            def on_memory_access(self, event):
                seen.append(event)

        tool = LegacyTool()
        assert tool.wants(EventCategory.MEMORY_ACCESS_BATCH)
        batch = MemoryAccessBatch(
            kernel_launch_id=9,
            addresses=(0x100, 0x200), sizes=(4, 8), write_flags=(False, True),
            thread_indices=(1, 2), block_indices=(0, 1),
            device_index=3, source="test",
        )
        tool.handle_event(batch)
        assert [e.address for e in seen] == [0x100, 0x200]
        assert [e.is_write for e in seen] == [False, True]
        assert all(e.kernel_launch_id == 9 and e.device_index == 3 for e in seen)
        # Logical event accounting counts records, not containers.
        assert tool.events_received == 2

    def test_instruction_batch_unroll(self):
        kinds: list[InstructionKind] = []

        class BarrierCounter(PastaTool):
            tool_name = "barrier_counter"
            subscribed_categories = frozenset({EventCategory.INSTRUCTION})

            def on_instruction(self, event):
                kinds.append(event.kind)

        batch = InstructionBatch(
            kernel_launch_id=1,
            kinds=(InstructionKind.BLOCK_ENTRY, InstructionKind.BLOCK_EXIT),
            thread_indices=(0, 0), block_indices=(0, 0),
        )
        BarrierCounter().handle_event(batch)
        assert kinds == [InstructionKind.BLOCK_ENTRY, InstructionKind.BLOCK_EXIT]


class TestSessionParityAcrossDeliveryModes:
    def test_whole_session_reports_match(self, monkeypatch, tmp_path):
        """Record once batched, once per-record: replayed reports agree."""
        tools = lambda: [create_tool("access_histogram"),  # noqa: E731
                         create_tool("kernel_frequency")]
        batched_trace = tmp_path / "batched.pastatrace"
        api.run("alexnet", device="a100", tools=(), fine_grained=True,
                     batch_size=2, record_to=batched_trace)
        monkeypatch.setattr(ProfilingBackend, "batch_device_records", False)
        record_trace = tmp_path / "records.pastatrace"
        api.run("alexnet", device="a100", tools=(), fine_grained=True,
                     batch_size=2, record_to=record_trace)
        monkeypatch.undo()

        batched = replay_trace(batched_trace, tools=tools(), measure_overhead=False)
        unbatched = replay_trace(record_trace, tools=tools(), measure_overhead=False)
        batched_reports = batched.reports()
        unbatched_reports = unbatched.reports()
        # Sampled addresses are deterministic per launch id; launch ids differ
        # between the two simulations, so compare the aggregate shape that is
        # launch-id independent.
        b = batched_reports["access_histogram"]
        u = unbatched_reports["access_histogram"]
        for key in ("sampled_accesses", "accesses_by_size", "instructions_by_kind",
                    "instrumented_launches"):
            assert b[key] == u[key]
        assert batched_reports["kernel_frequency"] == unbatched_reports["kernel_frequency"]

    def test_per_record_trace_category_counts(self, monkeypatch, tmp_path):
        monkeypatch.setattr(ProfilingBackend, "batch_device_records", False)
        trace = tmp_path / "records.pastatrace"
        api.run("alexnet", device="a100", tools=(), fine_grained=True,
                     batch_size=2, record_to=trace)
        counts = TraceReader(trace).footer.category_counts
        assert counts.get("memory_access", 0) > 0
        assert "memory_access_batch" not in counts


class TestAllocatorStress:
    def _churn(self, allocator: CachingAllocator, steps: int, seed: int) -> None:
        rng = random.Random(seed)
        live = []
        for step in range(steps):
            if live and (len(live) > 40 or rng.random() < 0.45):
                victim = live.pop(rng.randrange(len(live)))
                allocator.free_tensor(victim)
            else:
                nbytes = rng.choice([256, 4 << 10, 64 << 10, 1 << 20, 3 << 20])
                jitter = rng.randrange(1, 512)
                live.append(
                    allocator.allocate_tensor(((nbytes + jitter),), dtype=DType.INT8)
                )
            if step % 64 == 0:
                allocator.check_consistency()
        allocator.check_consistency()
        allocator.free_tensors(live)
        allocator.check_consistency()

    @pytest.mark.parametrize("seed", [1, 7, 2026])
    def test_alloc_free_churn_keeps_invariants(self, seed):
        allocator = CachingAllocator(create_runtime(A100))
        self._churn(allocator, steps=500, seed=seed)
        # Everything freed: one fully coalesced free block per segment.
        assert allocator.stats.allocated_bytes == 0
        for segment in allocator.segments:
            assert len(segment.blocks) == 1
            assert segment.blocks[0].free
            assert segment.blocks[0].size == segment.size
        released = allocator.empty_cache()
        assert released == allocator.stats.peak_reserved_bytes or released > 0
        assert allocator.reserved_bytes() == 0
        allocator.check_consistency()

    def test_coalescing_merges_across_free_order(self):
        allocator = CachingAllocator(create_runtime(A100))
        tensors = [allocator.allocate_tensor((256 << 10,), dtype=DType.INT8)
                   for _ in range(8)]
        # Free in an interleaved order: odd indices, then even.
        for t in tensors[1::2]:
            allocator.free_tensor(t)
        allocator.check_consistency()
        for t in tensors[0::2]:
            allocator.free_tensor(t)
        allocator.check_consistency()
        for segment in allocator.segments:
            free_blocks = [b for b in segment.blocks if b.free]
            assert len(free_blocks) == 1

    def test_best_fit_matches_linear_reference(self):
        """The bisect index picks the block a linear best-fit scan would."""
        allocator = CachingAllocator(create_runtime(A100))
        rng = random.Random(99)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.5:
                allocator.free_tensor(live.pop(rng.randrange(len(live))))
            else:
                nbytes = rng.choice([512, 8 << 10, 128 << 10, 2 << 20])
                request = round_size(nbytes)
                pool = allocator._pool_for(request)
                expected = None
                for segment in allocator.segments:
                    if segment.pool != pool:
                        continue
                    for block in segment.blocks:
                        if block.free and block.size >= request:
                            if expected is None or block.size < expected.size:
                                expected = block
                actual = allocator._free_blocks[pool].best_fit(request)
                if expected is None:
                    assert actual is None
                else:
                    assert actual is not None
                    assert actual.size == expected.size
                live.append(allocator.allocate_tensor((nbytes,), dtype=DType.INT8))
        allocator.check_consistency()

    def test_peak_stats_invariant_under_churn(self):
        """Peak tracking equals an independent running-maximum reference."""
        allocator = CachingAllocator(create_runtime(A100))
        observed_peak = 0
        rng = random.Random(5)
        live = []
        for _ in range(400):
            if live and rng.random() < 0.48:
                allocator.free_tensor(live.pop(rng.randrange(len(live))))
            else:
                live.append(allocator.allocate_tensor(
                    (rng.choice([1 << 10, 256 << 10, 2 << 20]),), dtype=DType.INT8))
            observed_peak = max(observed_peak, allocator.stats.allocated_bytes)
        assert allocator.stats.peak_allocated_bytes == observed_peak
        assert allocator.stats.allocation_count - allocator.stats.free_count == len(live)

    def test_empty_cache_drops_free_index_entries(self):
        allocator = CachingAllocator(create_runtime(A100))
        t = allocator.allocate_tensor((4 * MiB,), dtype=DType.INT8)
        allocator.free_tensor(t)
        assert len(allocator._free_blocks["large"]) > 0
        allocator.empty_cache()
        assert len(allocator._free_blocks["large"]) == 0
        allocator.check_consistency()
