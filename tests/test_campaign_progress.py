"""Tests for live campaign progress streaming (:mod:`repro.campaign.progress`)
and the ``pasta campaign watch`` consumer."""

from __future__ import annotations

import json

import pytest

from repro.api import ProfileSpec, execute
from repro.api.spec import ParallelismSpec
from repro.campaign.cache import ResultCache
from repro.campaign.progress import (
    NULL_PROGRESS,
    ProgressWriter,
    activate_progress,
    active_progress,
    deactivate_progress,
    progress_scope,
    read_status,
    render_status,
    snapshot_status,
    status_path,
)
from repro.campaign.scheduler import CampaignScheduler
from repro.commands import main
from repro.errors import ReproError
from repro.obs import deactivate, reset_logging


@pytest.fixture(autouse=True)
def _clean_progress_state():
    """Keep process-global telemetry and progress state test-hermetic."""
    deactivate()
    deactivate_progress()
    reset_logging()
    yield
    deactivate()
    deactivate_progress()
    reset_logging()


def _stub_runner(payload):
    if payload["model"] == "explodes":
        raise RuntimeError("boom")
    return {
        "job": payload,
        "status": "ok",
        "summary": {"kernel_launches": 1, "total_kernel_time_ns": 10,
                    "peak_allocated_bytes": 8},
        "reports": {},
    }


def _jobs(*models):
    return [ProfileSpec(model=m, tools=("kernel_frequency",)) for m in models]


def _events(records, kind):
    return [r for r in records if r["type"] == kind]


def _job_events(records, index):
    return [r["event"] for r in _events(records, "job") if r["index"] == index]


# ---------------------------------------------------------------------- #
# writer + active bus
# ---------------------------------------------------------------------- #
class TestProgressWriter:
    def test_status_path_resolution(self, tmp_path):
        assert status_path(tmp_path) == tmp_path / "status.jsonl"
        assert status_path(tmp_path / "other.jsonl") == tmp_path / "other.jsonl"

    def test_emit_appends_flushed_typed_records(self, tmp_path):
        writer = ProgressWriter(tmp_path)
        writer.emit("campaign", event="start", total=3)
        # Flush-per-write: readable immediately, without close().
        records = read_status(tmp_path)
        assert records == [{"type": "campaign", "event": "start", "total": 3,
                            "ts_unix": records[0]["ts_unix"]}]
        writer.emit("job", event="queued", index=0)
        assert writer.records_written == 2
        assert len(read_status(tmp_path)) == 2
        writer.close()

    def test_emit_after_close_is_silent(self, tmp_path):
        writer = ProgressWriter(tmp_path)
        writer.close()
        writer.emit("job", event="queued", index=0)
        assert writer.records_written == 0

    def test_context_manager_closes(self, tmp_path):
        with ProgressWriter(tmp_path) as writer:
            writer.emit("campaign", event="start")
        assert writer._fh.closed

    def test_read_status_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no status file"):
            read_status(tmp_path)

    def test_active_bus_default_and_scope(self, tmp_path):
        assert active_progress() is NULL_PROGRESS
        writer = ProgressWriter(tmp_path)
        with progress_scope(writer) as scoped:
            assert active_progress() is scoped is writer
        assert active_progress() is NULL_PROGRESS
        assert writer._fh.closed  # the scope closed it

    def test_activate_deactivate(self, tmp_path):
        writer = ProgressWriter(tmp_path)
        assert activate_progress(writer) is writer
        assert active_progress() is writer
        deactivate_progress()
        assert active_progress() is NULL_PROGRESS
        writer.close()

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.emit("job", event="queued")
        NULL_PROGRESS.close()
        assert NULL_PROGRESS.enabled is False


# ---------------------------------------------------------------------- #
# snapshot + render
# ---------------------------------------------------------------------- #
def _stream(*records, start=1_000.0):
    out = []
    for offset, record in enumerate(records):
        out.append({"ts_unix": start + offset, **record})
    return out


class TestSnapshot:
    def test_live_campaign_counts_and_eta(self):
        records = _stream(
            {"type": "campaign", "event": "start", "campaign": "sweep",
             "execution": "simulate", "total": 4, "slots": 2},
            {"type": "job", "event": "queued", "index": 0, "job": "a"},
            {"type": "job", "event": "queued", "index": 1, "job": "b"},
            {"type": "job", "event": "queued", "index": 2, "job": "c"},
            {"type": "job", "event": "queued", "index": 3, "job": "d"},
            {"type": "job", "event": "started", "index": 0, "job": "a"},
            {"type": "job", "event": "started", "index": 1, "job": "b"},
            {"type": "job", "event": "finished", "index": 0, "job": "a",
             "status": "ok", "cache_hit": False, "duration_s": 1.0},
            {"type": "job", "event": "finished", "index": 1, "job": "b",
             "status": "ok", "cache_hit": True, "duration_s": 0.0},
        )
        snapshot = snapshot_status(records, now_unix=1_010.0)
        assert snapshot["campaign"] == "sweep"
        assert snapshot["total"] == 4
        assert snapshot["finished"] == 2
        assert snapshot["queued"] == 2
        assert snapshot["running"] == 0
        assert snapshot["remaining"] == 2
        assert snapshot["by_status"] == {"ok": 2}
        assert snapshot["cache_hits"] == 1
        assert snapshot["cache_misses"] == 1
        assert snapshot["ended"] is False
        # 2 finished over 10s of wall clock => 5s/job => ETA 10s for 2 left.
        assert snapshot["elapsed_s"] == pytest.approx(10.0)
        assert snapshot["throughput_jobs_s"] == pytest.approx(0.2)
        assert snapshot["eta_s"] == pytest.approx(10.0)

    def test_ended_campaign_uses_its_own_clock(self):
        records = _stream(
            {"type": "campaign", "event": "start", "campaign": "sweep",
             "execution": "simulate", "total": 1, "slots": 1},
            {"type": "job", "event": "queued", "index": 0, "job": "a"},
            {"type": "job", "event": "started", "index": 0, "job": "a"},
            {"type": "job", "event": "finished", "index": 0, "job": "a",
             "status": "ok", "cache_hit": False, "duration_s": 1.0},
            {"type": "campaign", "event": "end", "campaign": "sweep"},
        )
        # now_unix far in the future must not dilute a finished campaign.
        snapshot = snapshot_status(records, now_unix=9_999.0)
        assert snapshot["ended"] is True
        assert snapshot["elapsed_s"] == pytest.approx(4.0)
        assert snapshot["eta_s"] == 0.0
        assert snapshot["remaining"] == 0
        assert "campaign finished" in render_status(snapshot)

    def test_retries_and_running_states(self):
        records = _stream(
            {"type": "campaign", "event": "start", "campaign": "s",
             "execution": "simulate", "total": 2, "slots": 1},
            {"type": "job", "event": "queued", "index": 0, "job": "a"},
            {"type": "job", "event": "started", "index": 0, "job": "a"},
            {"type": "job", "event": "retried", "index": 0, "job": "a",
             "attempt": 1, "error": "RuntimeError: transient"},
        )
        snapshot = snapshot_status(records, now_unix=1_010.0)
        assert snapshot["running"] == 1
        assert snapshot["retried"] == 1
        assert snapshot["finished"] == 0

    def test_rank_progress_latest_wins(self):
        records = _stream(
            {"type": "campaign", "event": "start", "campaign": "s",
             "execution": "simulate", "total": 1, "slots": 1},
            {"type": "rank", "event": "progress", "job": "j", "rank": 0,
             "iteration": 1, "iterations": 3},
            {"type": "rank", "event": "progress", "job": "j", "rank": 1,
             "iteration": 1, "iterations": 3},
            {"type": "rank", "event": "progress", "job": "j", "rank": 0,
             "iteration": 2, "iterations": 3},
        )
        snapshot = snapshot_status(records, now_unix=1_010.0)
        assert snapshot["ranks"] == {"j": {
            "rank0": {"iteration": 2, "iterations": 3},
            "rank1": {"iteration": 1, "iterations": 3},
        }}
        assert "ranks[j]: rank0 2/3, rank1 1/3" in render_status(snapshot)

    def test_snapshot_is_json_native(self):
        snapshot = snapshot_status(_stream(
            {"type": "campaign", "event": "start", "campaign": "s",
             "execution": "simulate", "total": 0, "slots": 1},
            {"type": "campaign", "event": "end", "campaign": "s"},
        ))
        assert json.loads(json.dumps(snapshot, sort_keys=True)) == snapshot


# ---------------------------------------------------------------------- #
# scheduler integration: the full lifecycle stream
# ---------------------------------------------------------------------- #
class TestSchedulerStream:
    def test_every_job_transition_with_cache_attribution(self, tmp_path):
        # Acceptance gate: a >= 6-job campaign leaves a status stream with
        # every lifecycle transition, cache misses attributed on the first
        # pass and cache hits on the second.
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs("a", "b", "c", "d", "e", "f")
        with progress_scope(ProgressWriter(tmp_path / "s1")):
            CampaignScheduler(jobs=2, cache=cache,
                              job_runner=_stub_runner).run(jobs, name="first")
        records = read_status(tmp_path / "s1")
        assert [r["event"] for r in _events(records, "campaign")] == [
            "start", "end"]
        start = _events(records, "campaign")[0]
        assert start["campaign"] == "first"
        assert start["total"] == 6 and start["slots"] == 2
        for index in range(6):
            assert _job_events(records, index) == [
                "queued", "started", "finished"]
        finished = [r for r in _events(records, "job")
                    if r["event"] == "finished"]
        assert all(r["cache_hit"] is False for r in finished)
        assert all(r["status"] == "ok" for r in finished)
        assert all(len(r["digest"]) == 12 for r in _events(records, "job"))

        # Second pass over the same cache: jobs never start, they finish
        # straight from the cache with cache_hit attribution.
        with progress_scope(ProgressWriter(tmp_path / "s2")):
            CampaignScheduler(jobs=2, cache=cache,
                              job_runner=_stub_runner).run(jobs, name="second")
        records = read_status(tmp_path / "s2")
        for index in range(6):
            assert _job_events(records, index) == ["queued", "finished"]
        finished = [r for r in _events(records, "job")
                    if r["event"] == "finished"]
        assert all(r["cache_hit"] is True for r in finished)
        snapshot = snapshot_status(records)
        assert snapshot["cache_hits"] == 6 and snapshot["cache_misses"] == 0

    def test_failed_job_finishes_with_error(self, tmp_path):
        with progress_scope(ProgressWriter(tmp_path)):
            CampaignScheduler(jobs=1, executor="serial",
                              job_runner=_stub_runner).run(
                _jobs("a", "explodes"), name="fails")
        records = read_status(tmp_path)
        failed = next(r for r in _events(records, "job")
                      if r["event"] == "finished" and r["status"] == "failed")
        assert "boom" in failed["error"]
        assert snapshot_status(records)["by_status"] == {"failed": 1, "ok": 1}

    def test_retried_events_carry_attempt_errors(self, tmp_path):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _stub_runner(payload)

        with progress_scope(ProgressWriter(tmp_path)):
            CampaignScheduler(jobs=1, executor="serial", retries=2,
                              job_runner=flaky).run(_jobs("a"), name="retry")
        records = read_status(tmp_path)
        retried = [r for r in _events(records, "job") if r["event"] == "retried"]
        assert [r["attempt"] for r in retried] == [1, 2]
        assert all("transient" in r["error"] for r in retried)
        finished = next(r for r in _events(records, "job")
                        if r["event"] == "finished")
        assert finished["attempts"] == 3 and finished["status"] == "ok"
        assert snapshot_status(records)["retried"] == 2

    def test_explicit_writer_beats_active_bus(self, tmp_path):
        writer = ProgressWriter(tmp_path / "explicit")
        CampaignScheduler(jobs=1, executor="serial", job_runner=_stub_runner,
                          progress=writer).run(_jobs("a"), name="direct")
        writer.close()
        assert len(read_status(tmp_path / "explicit")) >= 4
        assert not status_path(tmp_path).exists()

    def test_no_bus_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        CampaignScheduler(jobs=1, executor="serial",
                          job_runner=_stub_runner).run(_jobs("a"))
        assert list(tmp_path.rglob("status.jsonl")) == []


# ---------------------------------------------------------------------- #
# per-rank progress from parallel profiles
# ---------------------------------------------------------------------- #
class TestRankProgress:
    def test_parallel_run_streams_one_record_per_rank_per_iteration(
            self, tmp_path):
        spec = ProfileSpec(
            model="megatron_gpt2_345m", tools=("kernel_frequency",),
            mode="train", iterations=3,
            parallelism=ParallelismSpec(strategy="tp", world_size=2))
        with progress_scope(ProgressWriter(tmp_path)):
            execute(spec)
        rank_records = _events(read_status(tmp_path), "rank")
        assert len(rank_records) == 6  # 3 iterations x 2 ranks
        assert {r["rank"] for r in rank_records} == {0, 1}
        assert {r["strategy"] for r in rank_records} == {"tp"}
        last = [r for r in rank_records if r["iteration"] == 3]
        assert {r["rank"] for r in last} == {0, 1}
        assert all(r["iterations"] == 3 for r in rank_records)

    def test_no_bus_means_no_hook_overhead(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec = ProfileSpec(
            model="megatron_gpt2_345m", tools=("kernel_frequency",),
            mode="train", iterations=1,
            parallelism=ParallelismSpec(strategy="dp", world_size=2))
        execute(spec)
        assert list(tmp_path.rglob("status.jsonl")) == []


# ---------------------------------------------------------------------- #
# CLI: campaign run --status + campaign watch
# ---------------------------------------------------------------------- #
def _spec_file(tmp_path, models=("alexnet", "resnet18", "bert"),
               devices=("rtx3060", "a100")):
    spec = {"name": "watched", "models": list(models),
            "devices": list(devices), "tools": ["kernel_frequency"],
            "batch_size": 2}
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    return path


class TestWatchCli:
    def test_run_status_then_watch_once(self, tmp_path, capsys):
        # Acceptance gate: a 6-job campaign streams to status.jsonl and
        # `campaign watch` renders its progress.
        spec_path = _spec_file(tmp_path)
        assert main(["campaign", "run", str(spec_path), "--no-cache",
                     "--status", str(tmp_path / "live")]) == 0
        capsys.readouterr()
        records = read_status(tmp_path / "live")
        for index in range(6):
            assert _job_events(records, index) == [
                "queued", "started", "finished"]
        assert main(["campaign", "watch", str(tmp_path / "live"),
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "campaign watched" in out
        assert "6/6 finished" in out
        assert "campaign finished" in out

    def test_watch_follows_to_completion_and_emits_json(self, tmp_path, capsys):
        spec_path = _spec_file(tmp_path, models=("alexnet",),
                               devices=("rtx3060",))
        assert main(["campaign", "run", str(spec_path), "--no-cache",
                     "--status", str(tmp_path / "live")]) == 0
        capsys.readouterr()
        # The stream already ended, so the follow loop exits on first read.
        assert main(["campaign", "watch", str(tmp_path / "live"),
                     "--interval", "0.01", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["ended"] is True
        assert snapshot["finished"] == snapshot["total"] == 1
        assert snapshot["cache_misses"] == 1

    def test_watch_once_missing_file_errors(self, tmp_path, capsys):
        assert main(["campaign", "watch", str(tmp_path), "--once"]) == 1
        assert "no status file" in capsys.readouterr().err

    def test_watch_timeout_on_unfinished_stream(self, tmp_path, capsys):
        writer = ProgressWriter(tmp_path)
        writer.emit("campaign", event="start", campaign="stuck",
                    execution="simulate", total=2, slots=1)
        writer.emit("job", event="queued", index=0, job="a")
        writer.close()
        assert main(["campaign", "watch", str(tmp_path), "--interval", "0.05",
                     "--timeout", "0.1"]) == 1
        assert "watch timeout" in capsys.readouterr().out
