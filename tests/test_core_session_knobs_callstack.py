"""Tests for the PASTA session, annotations, knobs, call stacks and overhead accounting."""

from __future__ import annotations

import pytest

from repro.errors import PastaError, VendorError
from repro.core.annotations import RangeFilter
from repro.core.callstack import build_cross_layer_stack, synthesize_cpp_frames
from repro.core.events import KernelLaunchEvent
from repro.core.knobs import KernelStats, KnobRegistry
from repro.core.overhead import OverheadAccountant
from repro.core.session import PROFILER_RESERVED_BYTES, PastaSession
from repro import pasta
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.dlframework.models import create_model
from repro.gpusim.costmodel import InstrumentationBackend
from repro.gpusim.device import A100, RTX3060
from repro.gpusim.runtime import create_runtime
from repro.gpusim.trace import AnalysisModel
from repro.tools import KernelFrequencyTool, MemoryCharacteristicsTool
from repro.vendors import ComputeSanitizerBackend, NvbitBackend


class TestSessionLifecycle:
    def test_session_attaches_and_detaches(self, a100_runtime):
        session = PastaSession(a100_runtime, tools=[KernelFrequencyTool()])
        with session:
            assert session.is_active
            assert session.backend.is_attached
            assert a100_runtime.device.profiler_reserved_bytes == PROFILER_RESERVED_BYTES
        assert not session.is_active
        assert a100_runtime.device.profiler_reserved_bytes == 0

    def test_double_start_rejected(self, a100_runtime):
        session = PastaSession(a100_runtime)
        session.start()
        with pytest.raises(PastaError):
            session.start()
        session.stop()

    def test_backend_selection_by_name(self, a100_runtime):
        session = PastaSession(a100_runtime, vendor_backend="nvbit")
        assert isinstance(session.backend, NvbitBackend)
        with pytest.raises(VendorError):
            PastaSession(create_runtime(A100), vendor_backend="vtune")

    def test_default_backend_matches_vendor(self, a100_runtime, mi300x_runtime):
        assert isinstance(PastaSession(a100_runtime).backend, ComputeSanitizerBackend)
        assert PastaSession(mi300x_runtime).backend.name == "rocprofiler"

    def test_fine_grained_request_patches_sanitizer(self, a100_runtime):
        session = PastaSession(a100_runtime, enable_fine_grained=True)
        with session:
            assert session.backend.instruction_tracing_enabled

    def test_end_to_end_profiling_collects_tool_data(self, a100_runtime):
        ctx = FrameworkContext(a100_runtime)
        engine = ExecutionEngine(ctx)
        model = create_model("resnet18")
        freq = KernelFrequencyTool()
        mem = MemoryCharacteristicsTool()
        session = PastaSession(a100_runtime, tools=[freq, mem])
        session.attach_framework(ctx)
        with session:
            engine.prepare(model)
            engine.run_inference(model, batch_size=2)
        assert freq.total_launches > 50
        assert mem.working_set_bytes > 0
        assert mem.memory_footprint_bytes > mem.working_set_bytes
        reports = session.reports()
        assert "kernel_frequency" in reports and "overhead" in reports


class TestAnnotations:
    def test_pasta_start_stop_scope_analysis(self, a100_runtime):
        ctx = FrameworkContext(a100_runtime)
        engine = ExecutionEngine(ctx)
        model = create_model("alexnet")
        freq = KernelFrequencyTool()
        session = PastaSession(a100_runtime, tools=[freq])
        session.attach_framework(ctx)
        with session:
            engine.prepare(model)
            model.eval()
            inputs = model.make_example_inputs(ctx, 2)
            # Only the classifier region is annotated for analysis.
            features = model.features(ctx, inputs)
            pooled = model.avgpool(ctx, features)
            before = freq.total_launches
            pasta.start("classifier")
            model.classifier(ctx, pooled)
            pasta.stop("classifier")
            inside = freq.total_launches - before
            model.features(ctx, inputs)   # outside any region: not analysed
            after = freq.total_launches
        assert inside > 0
        assert after == before + inside

    def test_annotations_are_noops_without_a_session(self):
        # Must not raise even though no session is active.
        pasta.start("anything")
        pasta.stop("anything")

    def test_region_filter_integration(self, a100_runtime):
        session = PastaSession(a100_runtime, tools=[KernelFrequencyTool()])
        with session:
            session.begin_region("roi")
            assert session.processor.range_filter.region_depth == 1
            session.end_region("roi")
            assert session.processor.range_filter.region_depth == 0

    def test_grid_window_via_range_filter(self, a100_runtime):
        freq = KernelFrequencyTool()
        filt = RangeFilter(start_grid_id=0, end_grid_id=9)
        ctx = FrameworkContext(a100_runtime)
        engine = ExecutionEngine(ctx)
        model = create_model("alexnet")
        session = PastaSession(a100_runtime, tools=[freq], range_filter=filt)
        session.attach_framework(ctx)
        with session:
            engine.prepare(model)
            engine.run_inference(model, batch_size=2)
        assert freq.total_launches == 10


class TestKnobsAndCallstack:
    def test_knob_registry_selection(self):
        stats = {
            "gemm": KernelStats("gemm", invocation_count=10, total_memory_accesses=1000),
            "copy": KernelStats("copy", invocation_count=50, total_memory_accesses=10),
        }
        registry = KnobRegistry()
        assert registry.select("MAX_MEM_REFERENCED_KERNEL", stats).kernel_name == "gemm"
        assert registry.select("MAX_CALLED_KERNEL", stats).kernel_name == "copy"
        assert registry.select("MAX_CALLED_KERNEL", {}) is None
        with pytest.raises(PastaError):
            registry.select("NOT_A_KNOB", stats)

    def test_custom_knob_registration(self):
        registry = KnobRegistry()
        registry.register("SHORTEST_NAME_KERNEL", lambda s: min(s.values(), key=lambda k: len(k.kernel_name)) if s else None)
        stats = {"a": KernelStats("a"), "long_kernel": KernelStats("long_kernel")}
        assert registry.select("shortest_name_kernel", stats).kernel_name == "a"
        assert "SHORTEST_NAME_KERNEL" in registry.names()

    def test_cpp_frames_match_kernel_family(self):
        frames = synthesize_cpp_frames("ampere_sgemm_128x64_tn")
        rendered = " ".join(f.render() for f in frames)
        assert "gemm_and_bias" in rendered
        assert "__libc_start_main" in rendered

    def test_cross_layer_stack_combines_both_languages(self):
        stack = build_cross_layer_stack(
            "at::cuda::blas::gemm_and_bias",
            ("torch/nn/modules/linear.py:114 def forward()",
             "models/bert/run_bert.py:146 def test_bert()"),
        )
        languages = {frame.language for frame in stack.frames}
        assert languages == {"c++", "python"}
        text = stack.render()
        assert "linear.py" in text and "CUDABlas.cpp" in text

    def test_unknown_kernel_gets_generic_backtrace(self):
        frames = synthesize_cpp_frames("my_custom_kernel_v2")
        assert any("Dispatcher" in f.function for f in frames)


class TestOverheadAccountant:
    def test_accumulates_cost_per_kernel(self):
        accountant = OverheadAccountant(device_spec=A100)
        event = KernelLaunchEvent(kernel_name="k", duration_ns=1_000_000, total_memory_accesses=1_000_000)
        accountant.record_kernel(event)
        accountant.record_kernel(event)
        assert accountant.kernels_recorded == 2
        assert accountant.cost.execution_ns == 2_000_000
        assert accountant.normalized_overhead() > 0

    def test_cpu_side_nvbit_is_the_most_expensive(self):
        event = KernelLaunchEvent(kernel_name="k", duration_ns=1_000_000, total_memory_accesses=10_000_000)
        costs = {}
        for backend in (InstrumentationBackend.COMPUTE_SANITIZER, InstrumentationBackend.NVBIT):
            for model in (AnalysisModel.GPU_RESIDENT, AnalysisModel.CPU_SIDE):
                accountant = OverheadAccountant(device_spec=RTX3060, analysis_model=model, backend=backend)
                accountant.record_kernel(event)
                costs[(backend, model)] = accountant.cost.overhead_ns
        assert costs[(InstrumentationBackend.NVBIT, AnalysisModel.CPU_SIDE)] == max(costs.values())
        assert costs[(InstrumentationBackend.COMPUTE_SANITIZER, AnalysisModel.GPU_RESIDENT)] == min(costs.values())

    def test_report_structure(self):
        accountant = OverheadAccountant(device_spec=A100)
        report = accountant.report()
        assert report["device"] == A100.name
        assert set(report["fractions"]) == {"execution", "collection", "transfer", "analysis"}
