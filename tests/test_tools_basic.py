"""Tests for the case-study tools: kernel frequency, memory characteristics,
memory timeline, hotness and the inefficiency locator."""

from __future__ import annotations

import pytest

from repro.core.events import (
    KernelArgumentInfo,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemoryAllocEvent,
    OperatorStartEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)
from repro.tools import (
    InefficiencyLocatorTool,
    KernelFrequencyTool,
    MemoryCharacteristicsTool,
    MemoryTimelineTool,
    TimeSeriesHotnessTool,
)
from repro import api


def launch(name="k", accesses=0, working=0, footprint=0, grid_index=0, args=(), duration=1000):
    return KernelLaunchEvent(
        kernel_name=name,
        duration_ns=duration,
        total_memory_accesses=accesses,
        working_set_bytes=working,
        memory_footprint_bytes=footprint,
        grid_index=grid_index,
        arguments=tuple(args),
    )


class TestKernelFrequencyTool:
    def test_counts_and_top_kernels(self):
        tool = KernelFrequencyTool()
        for _ in range(5):
            tool.handle_event(launch("gemm"))
        for _ in range(2):
            tool.handle_event(launch("copy"))
        tool.handle_event(launch("softmax"))
        assert tool.total_launches == 8
        assert tool.distinct_kernels == 3
        top = tool.top_kernels(2)
        assert top[0].kernel_name == "gemm" and top[0].invocations == 5
        assert tool.frequencies()["copy"] == 2

    def test_concentration(self):
        tool = KernelFrequencyTool()
        for _ in range(90):
            tool.handle_event(launch("hot"))
        for i in range(10):
            tool.handle_event(launch(f"cold{i}"))
        assert tool.concentration(1) == pytest.approx(0.9)
        assert tool.concentration(5) > 0.9

    def test_empty_tool(self):
        tool = KernelFrequencyTool()
        assert tool.concentration() == 0.0
        assert tool.top_kernels() == []
        assert tool.report()["total_launches"] == 0


class TestMemoryCharacteristicsTool:
    def test_working_set_statistics(self):
        tool = MemoryCharacteristicsTool()
        tool.handle_event(MemoryAllocEvent(address=0x1000, size=10_000, object_id=1))
        for ws in (100, 200, 300, 400):
            tool.handle_event(KernelMemoryProfile(
                kernel_name="k", working_set_bytes=ws, footprint_bytes=ws * 2,
                object_referenced_bytes={1: ws}, object_access_counts={1: 10},
            ))
        summary = tool.summary()
        assert summary.kernel_count == 4
        assert summary.working_set_bytes == 400
        assert summary.min_working_set_bytes == 100
        assert summary.avg_working_set_bytes == pytest.approx(250.0)
        assert summary.median_working_set_bytes == pytest.approx(250.0)
        assert summary.p90_working_set_bytes >= 300

    def test_footprint_tracks_peak_driver_bytes(self):
        tool = MemoryCharacteristicsTool()
        tool.handle_event(MemoryAllocEvent(address=0x1000, size=1000, object_id=1))
        tool.handle_event(MemoryAllocEvent(address=0x2000, size=2000, object_id=2))
        assert tool.memory_footprint_bytes == 3000

    def test_underutilized_bytes(self):
        tool = MemoryCharacteristicsTool()
        tool.handle_event(MemoryAllocEvent(address=0x1000, size=1000, object_id=1))
        tool.handle_event(KernelMemoryProfile(
            kernel_name="k", working_set_bytes=250, footprint_bytes=1000,
            object_referenced_bytes={1: 250}, object_access_counts={1: 5},
        ))
        assert tool.underutilized_bytes() == 750

    def test_kernel_stats_capture_operator_context(self):
        tool = MemoryCharacteristicsTool()
        tool.handle_event(OperatorStartEvent(name="aten::linear",
                                             python_stack=("model.py:1 def forward()",)))
        tool.handle_event(launch("gemm", accesses=100))
        stats = tool.kernel_stats["gemm"]
        assert stats.representative_op == "aten::linear"
        assert stats.representative_python_stack

    def test_empty_summary(self):
        summary = MemoryCharacteristicsTool().summary()
        assert summary.kernel_count == 0
        assert summary.working_set_bytes == 0


class TestMemoryTimelineTool:
    def test_per_device_timelines(self):
        tool = MemoryTimelineTool()
        tool.handle_event(TensorAllocEvent(device_index=0, nbytes=100, pool_allocated_bytes=100))
        tool.handle_event(TensorAllocEvent(device_index=0, nbytes=200, pool_allocated_bytes=300))
        tool.handle_event(TensorFreeEvent(device_index=0, nbytes=100, pool_allocated_bytes=200))
        tool.handle_event(TensorAllocEvent(device_index=1, nbytes=50, pool_allocated_bytes=50))
        assert tool.devices() == [0, 1]
        t0 = tool.timeline(0)
        assert t0.peak_bytes == 300
        assert t0.alloc_events == 2 and t0.free_events == 1
        assert t0.final_bytes() == 200
        assert tool.timeline(1).peak_bytes == 50

    def test_usage_difference(self):
        tool = MemoryTimelineTool()
        for usage in (100, 200, 300):
            tool.handle_event(TensorAllocEvent(device_index=0, pool_allocated_bytes=usage))
            tool.handle_event(TensorAllocEvent(device_index=1, pool_allocated_bytes=usage // 2))
        diffs = tool.usage_difference(0, 1, points=10)
        assert len(diffs) == 10
        assert all(d >= 0 for d in diffs)

    def test_unknown_device_timeline_is_empty(self):
        tool = MemoryTimelineTool()
        assert tool.timeline(7).event_count == 0
        assert tool.timeline(7).usage_at(0.5) == 0


class TestHotnessTool:
    def _arg(self, address, size, accesses):
        return KernelArgumentInfo(address=address, size=size, referenced_bytes=size,
                                  access_count=accesses)

    def test_matrix_dimensions(self):
        tool = TimeSeriesHotnessTool(kernels_per_window=2)
        block = 2 * 1024 * 1024
        for i in range(6):
            tool.handle_event(launch("k", grid_index=i, args=[self._arg(0, block, 10)]))
        blocks, matrix = tool.hotness_matrix()
        assert matrix.shape == (len(blocks), 3)
        assert tool.window_count == 3

    def test_long_lived_vs_bursty_classification(self):
        tool = TimeSeriesHotnessTool(kernels_per_window=1)
        block = 2 * 1024 * 1024
        hot_addr, bursty_addr = 0, 100 * block
        for i in range(10):
            args = [self._arg(hot_addr, block, 50)]
            if i == 4:
                args.append(self._arg(bursty_addr, block, 500))
            tool.handle_event(launch("k", args=args))
        kinds = {c.block_id: c.kind for c in tool.classify_blocks()}
        assert kinds[0] == "long_lived_hot"
        assert kinds[100] == "bursty"
        assert 0 in tool.prefetch_candidates()
        assert 100 in tool.eviction_candidates()

    def test_empty_tool(self):
        tool = TimeSeriesHotnessTool()
        assert tool.window_count == 0
        assert tool.classify_blocks() == []
        assert tool.report()["blocks"] == 0


class TestInefficiencyLocator:
    def test_locates_most_memory_referenced_kernel_with_stack(self):
        tool = InefficiencyLocatorTool()
        tool.handle_event(OperatorStartEvent(
            name="aten::linear",
            python_stack=("torch/nn/modules/linear.py:114 def forward()",),
        ))
        tool.handle_event(launch("at::cuda::blas::gemm_and_bias", accesses=10_000))
        tool.handle_event(launch("copy_kernel", accesses=10))
        finding = tool.locate("MAX_MEM_REFERENCED_KERNEL")
        assert finding.kernel_name == "at::cuda::blas::gemm_and_bias"
        text = finding.render()
        assert "linear.py" in text
        assert "CUDABlas.cpp" in text

    def test_max_called_knob(self):
        tool = InefficiencyLocatorTool()
        for _ in range(5):
            tool.handle_event(launch("frequent", accesses=1))
        tool.handle_event(launch("rare", accesses=100))
        assert tool.locate("MAX_CALLED_KERNEL").kernel_name == "frequent"

    def test_empty_tool_returns_none(self):
        assert InefficiencyLocatorTool().locate() is None


class TestFigure4Scenario:
    def test_bert_inference_hot_kernel_is_the_gemm(self):
        """Figure 4: the most memory-referenced kernel during BERT inference is
        the cuBLAS GEMM-with-bias, and its cross-layer stack spans Python and C++."""
        locator = InefficiencyLocatorTool()
        api.run("bert", device="a100", mode="inference", tools=[locator], batch_size=4)
        finding = locator.locate("MAX_MEM_REFERENCED_KERNEL")
        assert "gemm" in finding.kernel_name.lower()
        languages = {frame.language for frame in finding.stack.frames}
        assert languages == {"python", "c++"}
