"""Tests for the profiling-overhead cost model and the multi-GPU process model."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpusim.costmodel import (
    CostModelConfig,
    InstrumentationBackend,
    OverheadModel,
    ProfilingCost,
)
from repro.gpusim.device import A100, MI300X, RTX3060
from repro.gpusim.multigpu import DeviceSet, InjectionMethod, ProcessModel
from repro.gpusim.trace import AnalysisModel

WORKLOAD = [(1_000_000.0, 5_000_000), (2_000_000.0, 20_000_000), (500_000.0, 1_000_000)]


class TestProfilingCost:
    def test_totals_and_overhead(self):
        cost = ProfilingCost(execution_ns=100, collection_ns=50, transfer_ns=25, analysis_ns=25)
        assert cost.total_ns == 200
        assert cost.overhead_ns == 100
        assert cost.normalized_overhead() == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        cost = ProfilingCost(execution_ns=10, collection_ns=20, transfer_ns=30, analysis_ns=40)
        fractions = cost.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_execution_gives_infinite_overhead(self):
        assert ProfilingCost(collection_ns=10).normalized_overhead() == float("inf")

    def test_addition(self):
        a = ProfilingCost(execution_ns=1, collection_ns=2, transfer_ns=3, analysis_ns=4)
        b = ProfilingCost(execution_ns=10, collection_ns=20, transfer_ns=30, analysis_ns=40)
        c = a + b
        assert (c.execution_ns, c.collection_ns, c.transfer_ns, c.analysis_ns) == (11, 22, 33, 44)


class TestOverheadModel:
    def test_gpu_resident_is_much_cheaper_than_cpu_side(self):
        model = OverheadModel(A100)
        gpu = model.workload_cost(WORKLOAD, AnalysisModel.GPU_RESIDENT)
        cpu = model.workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE)
        assert cpu.overhead_ns / gpu.overhead_ns > 50

    def test_nvbit_is_costlier_than_sanitizer(self):
        model = OverheadModel(A100)
        sanitizer = model.workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE,
                                        InstrumentationBackend.COMPUTE_SANITIZER)
        nvbit = model.workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE,
                                    InstrumentationBackend.NVBIT)
        assert nvbit.overhead_ns > 5 * sanitizer.overhead_ns

    def test_larger_gpu_benefits_more_from_gpu_analysis(self):
        a100_model, r3060_model = OverheadModel(A100), OverheadModel(RTX3060)
        a100_ratio = (
            a100_model.workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE).overhead_ns
            / a100_model.workload_cost(WORKLOAD, AnalysisModel.GPU_RESIDENT).overhead_ns
        )
        r3060_ratio = (
            r3060_model.workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE).overhead_ns
            / r3060_model.workload_cost(WORKLOAD, AnalysisModel.GPU_RESIDENT).overhead_ns
        )
        assert a100_ratio > r3060_ratio

    def test_cpu_side_breakdown_dominated_by_analysis(self):
        cost = OverheadModel(A100).workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE)
        fractions = cost.fractions()
        assert fractions["analysis"] > 0.5

    def test_gpu_resident_breakdown_dominated_by_collection(self):
        cost = OverheadModel(A100).workload_cost(WORKLOAD, AnalysisModel.GPU_RESIDENT)
        fractions = cost.fractions()
        assert fractions["collection"] > fractions["analysis"]
        assert fractions["analysis"] == 0.0

    def test_empty_workload_has_zero_cost(self):
        cost = OverheadModel(A100).workload_cost([], AnalysisModel.GPU_RESIDENT)
        assert cost.total_ns == 0.0

    def test_custom_config_is_respected(self):
        config = CostModelConfig(cpu_analysis_ns_per_record=1.0)
        default = OverheadModel(A100).workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE)
        cheap = OverheadModel(A100, config).workload_cost(WORKLOAD, AnalysisModel.CPU_SIDE)
        assert cheap.analysis_ns < default.analysis_ns

    def test_analysis_lanes_scale_with_sm_count(self):
        assert OverheadModel(A100).analysis_lanes > OverheadModel(RTX3060).analysis_lanes


#: A Megatron-LM-style two-rank launch: one trainer per GPU plus the
#: auxiliary helpers (JIT compilation workers, data loaders) that never
#: initialise a CUDA context (Section IV-D's noise scenario).
MEGATRON_LAUNCH = (
    ("trainer_rank0", True),
    ("trainer_rank1", True),
    ("fused_kernel_jit_worker", False),
    ("fused_kernel_jit_worker", False),
    ("dataloader_worker", False),
    ("tensorboard_writer", False),
)


def _launch(pm: ProcessModel) -> ProcessModel:
    for name, creates_context in MEGATRON_LAUNCH:
        pm.spawn(name, creates_gpu_context=creates_context)
    return pm


class TestProcessModel:
    def test_ld_preload_instruments_every_process(self):
        pm = ProcessModel(InjectionMethod.LD_PRELOAD)
        pm.spawn("trainer_rank0", creates_gpu_context=True)
        pm.spawn("jit_helper", creates_gpu_context=False)
        assert len(pm.instrumented_processes()) == 2
        assert len(pm.spurious_instrumentations()) == 1

    def test_cuda_injection_path_skips_helper_processes(self):
        pm = ProcessModel(InjectionMethod.CUDA_INJECTION64_PATH)
        pm.spawn("trainer_rank0", creates_gpu_context=True)
        pm.spawn("trainer_rank1", creates_gpu_context=True)
        pm.spawn("jit_helper", creates_gpu_context=False)
        pm.spawn("dataloader", creates_gpu_context=False)
        assert len(pm.instrumented_processes()) == 2
        assert pm.spurious_instrumentations() == []

    def test_default_injection_method_is_cuda_injection_path(self):
        # PASTA's documented choice: only processes that initialise a GPU
        # context get instrumented, so a bare ProcessModel() is noise-free.
        pm = _launch(ProcessModel())
        assert pm.injection is InjectionMethod.CUDA_INJECTION64_PATH
        assert pm.spurious_instrumentations() == []

    def test_megatron_launch_ld_preload_noise_case(self):
        # LD_PRELOAD injects into *every* spawned process: the four helper
        # processes are pure instrumentation noise — exactly the failure
        # mode Section IV-D describes for Megatron-LM's JIT workers.
        pm = _launch(ProcessModel(InjectionMethod.LD_PRELOAD))
        assert len(pm.instrumented_processes()) == len(MEGATRON_LAUNCH)
        spurious = pm.spurious_instrumentations()
        assert sorted(p.name for p in spurious) == sorted(
            name for name, creates in MEGATRON_LAUNCH if not creates
        )

    def test_megatron_launch_injection_path_instruments_trainers_only(self):
        pm = _launch(ProcessModel(InjectionMethod.CUDA_INJECTION64_PATH))
        instrumented = pm.instrumented_processes()
        assert sorted(p.name for p in instrumented) == ["trainer_rank0", "trainer_rank1"]
        assert pm.spurious_instrumentations() == []
        # Helpers were spawned and tracked, just never attached to.
        assert len(pm.processes) == len(MEGATRON_LAUNCH)

    def test_both_methods_cover_every_context_creating_process(self):
        # Whatever the method, no real GPU work escapes instrumentation:
        # the methods differ only in how much noise rides along.
        for method in InjectionMethod:
            pm = _launch(ProcessModel(method))
            instrumented = {p.pid for p in pm.instrumented_processes()}
            workers = {p.pid for p in pm.processes if p.creates_gpu_context}
            assert workers <= instrumented

    def test_pids_are_unique_and_monotonic(self):
        pm = _launch(ProcessModel())
        pids = [p.pid for p in pm.processes]
        assert pids == sorted(pids)
        assert len(set(pids)) == len(pids)


class TestDeviceSet:
    def test_basic_construction(self):
        ds = DeviceSet([A100, A100])
        assert len(ds) == 2
        assert len(set(ds.device_indices)) == 2

    def test_rank_lookup(self):
        ds = DeviceSet([A100, RTX3060])
        for rank, runtime in enumerate(ds):
            assert ds.rank_of_device_index(runtime.device.index) == rank

    def test_rank_lookup_unknown_device(self):
        ds = DeviceSet([A100])
        with pytest.raises(DeviceError):
            ds.rank_of_device_index(10_000)

    def test_empty_set_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSet([])

    def test_mixed_vendor_set(self):
        ds = DeviceSet([A100, MI300X])
        assert ds[0].api_prefix == "cuda"
        assert ds[1].api_prefix == "hip"

    def test_synchronize_all(self):
        ds = DeviceSet([A100, A100])
        from repro.gpusim.kernel import GridConfig

        ds[0].launch_kernel("k", GridConfig.for_elements(64), duration_ns=5_000)
        ds.synchronize_all()
        assert ds[0].device.now() >= 5_000
