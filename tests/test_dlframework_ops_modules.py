"""Tests for the operator layer and the module system."""

from __future__ import annotations

import pytest

from repro.errors import ModelError, ShapeError
from repro.dlframework import ops
from repro.dlframework.backend import CUDA_BACKEND, HIP_BACKEND
from repro.dlframework.context import FrameworkContext
from repro.dlframework.modules import (
    Dropout,
    Embedding,
    Linear,
    MultiheadSelfAttention,
    ReLU,
    Sequential,
    TransformerLayer,
)
from repro.dlframework.tensor import DType
from repro.gpusim.device import A100, MI300X
from repro.gpusim.runtime import create_runtime


@pytest.fixture
def ctx(a100_runtime) -> FrameworkContext:
    return FrameworkContext(a100_runtime)


def kernel_names(ctx: FrameworkContext) -> list[str]:
    return [launch.kernel_name for launch in ctx.runtime.kernel_launches]


class TestShapeHelpers:
    def test_conv2d_output_shape(self):
        assert ops.conv2d_output_shape((8, 3, 224, 224), 64, 11, stride=4, padding=2) == (8, 64, 55, 55)

    def test_conv2d_output_shape_validation(self):
        with pytest.raises(ShapeError):
            ops.conv2d_output_shape((8, 3, 224), 64, 3)
        with pytest.raises(ShapeError):
            ops.conv2d_output_shape((8, 3, 2, 2), 64, 5)

    def test_pool2d_output_shape(self):
        assert ops.pool2d_output_shape((8, 64, 55, 55), 3, 2) == (8, 64, 27, 27)


class TestDenseOps:
    def test_linear_shapes_and_gemm_kernel(self, ctx):
        x = ctx.alloc((16, 128))
        w = ctx.alloc((256, 128))
        b = ctx.alloc((256,))
        out = ops.linear(ctx, x, w, b)
        assert out.shape == (16, 256)
        assert any("gemm" in name for name in kernel_names(ctx))

    def test_linear_shape_mismatch(self, ctx):
        x = ctx.alloc((16, 100))
        w = ctx.alloc((256, 128))
        with pytest.raises(ShapeError):
            ops.linear(ctx, x, w, None)

    def test_linear_bias_fusion_differs_per_backend(self):
        cuda_ctx = FrameworkContext(create_runtime(A100), backend=CUDA_BACKEND)
        hip_ctx = FrameworkContext(create_runtime(MI300X), backend=HIP_BACKEND)
        for context in (cuda_ctx, hip_ctx):
            x = context.alloc((8, 64))
            w = context.alloc((32, 64))
            b = context.alloc((32,))
            ops.linear(context, x, w, b)
        # HIP lowers bias separately -> one extra elementwise kernel.
        assert len(hip_ctx.runtime.kernel_launches) == len(cuda_ctx.runtime.kernel_launches) + 1

    def test_matmul_and_bmm(self, ctx):
        a = ctx.alloc((4, 8, 16))
        b = ctx.alloc((4, 16, 32))
        out = ops.bmm(ctx, a, b)
        assert out.shape == (4, 8, 32)
        with pytest.raises(ShapeError):
            ops.bmm(ctx, ctx.alloc((8, 16)), ctx.alloc((16, 4)))


class TestConvAndPool:
    def test_conv2d_lowering_uses_im2col_and_frees_buffer(self, ctx):
        x = ctx.alloc((4, 3, 32, 32))
        w = ctx.alloc((16, 3, 3, 3))
        out = ops.conv2d(ctx, x, w, None, stride=1, padding=1)
        assert out.shape == (4, 16, 32, 32)
        names = kernel_names(ctx)
        assert any("im2col" in n for n in names)
        # The im2col scratch buffer is transient: freed before the op returns.
        live_names = {o.tag for o in ctx.runtime.allocator.live_objects()}
        assert all("im2col" not in n for n in live_names)

    def test_conv2d_channel_mismatch(self, ctx):
        with pytest.raises(ShapeError):
            ops.conv2d(ctx, ctx.alloc((4, 3, 8, 8)), ctx.alloc((8, 4, 3, 3)))

    def test_max_pool_shapes(self, ctx):
        out = ops.max_pool2d(ctx, ctx.alloc((4, 8, 16, 16)), kernel_size=2)
        assert out.shape == (4, 8, 8, 8)


class TestElementwiseAndNorm:
    def test_relu_inplace_reuses_storage(self, ctx):
        x = ctx.alloc((1024,))
        out = ops.relu(ctx, x, inplace=True)
        assert out is x

    def test_gelu_allocates_output(self, ctx):
        x = ctx.alloc((1024,))
        out = ops.gelu(ctx, x)
        assert out is not x and out.shape == x.shape

    def test_dropout_eval_mode_is_identity(self, ctx):
        x = ctx.alloc((1024,))
        launches_before = len(ctx.runtime.kernel_launches)
        out = ops.dropout(ctx, x, p=0.5, training=False)
        assert out is x
        assert len(ctx.runtime.kernel_launches) == launches_before

    def test_dropout_training_allocates_mask(self, ctx):
        x = ctx.alloc((1024,))
        out = ops.dropout(ctx, x, p=0.5, training=True)
        assert out is not x

    def test_softmax_and_layernorm_kernels(self, ctx):
        x = ctx.alloc((8, 128, 768))
        w = ctx.alloc((768,))
        b = ctx.alloc((768,))
        ops.softmax(ctx, x)
        ops.layer_norm(ctx, x, w, b)
        names = kernel_names(ctx)
        assert any("softmax" in n for n in names)
        assert any("layer_norm" in n for n in names)

    def test_embedding_accesses_only_gathered_rows(self, ctx):
        indices = ctx.alloc((4, 16), dtype=DType.INT64)
        table = ctx.alloc((50_000, 768))
        out = ops.embedding(ctx, indices, table)
        assert out.shape == (4, 16, 768)
        launch = ctx.runtime.kernel_launches[-1]
        # The table is passed whole but only a tiny fraction is referenced.
        assert launch.working_set_bytes < launch.memory_footprint_bytes / 10

    def test_reshape_is_metadata_only(self, ctx):
        x = ctx.alloc((4, 8))
        launches_before = len(ctx.runtime.kernel_launches)
        view = ops.reshape(ctx, x, (8, 4))
        assert view.address == x.address
        assert len(ctx.runtime.kernel_launches) == launches_before
        with pytest.raises(ShapeError):
            ops.reshape(ctx, x, (5, 5))

    def test_cat_concatenates_along_dim(self, ctx):
        a = ctx.alloc((2, 8))
        b = ctx.alloc((3, 8))
        out = ops.cat(ctx, [a, b], dim=0)
        assert out.shape == (5, 8)
        with pytest.raises(ShapeError):
            ops.cat(ctx, [], dim=0)


class TestBackwardAndOptim:
    def test_linear_backward_produces_all_grads(self, ctx):
        x = ctx.alloc((16, 128))
        w = ctx.alloc((64, 128))
        grad_out = ctx.alloc((16, 64))
        grad_in, grad_w, grad_b = ops.linear_backward(ctx, grad_out, x, w)
        assert grad_in.shape == x.shape
        assert grad_w.shape == w.shape
        assert grad_b.shape == (64,)

    def test_conv2d_backward_produces_all_grads(self, ctx):
        x = ctx.alloc((2, 3, 16, 16))
        w = ctx.alloc((8, 3, 3, 3))
        grad_out = ctx.alloc((2, 8, 14, 14))
        grad_in, grad_w, grad_b = ops.conv2d_backward(ctx, grad_out, x, w)
        assert grad_in.shape == x.shape
        assert grad_w.shape == w.shape

    def test_optimizer_step_chunks_parameters(self, ctx):
        params = [ctx.alloc((128,), is_parameter=True) for _ in range(70)]
        grads = [ctx.alloc((128,)) for _ in range(70)]
        launches_before = len(ctx.runtime.kernel_launches)
        ops.sgd_step(ctx, params, grads)
        # 70 parameters in chunks of 32 -> 3 multi-tensor-apply kernels.
        assert len(ctx.runtime.kernel_launches) - launches_before == 3

    def test_optimizer_step_length_mismatch(self, ctx):
        with pytest.raises(ShapeError):
            ops.sgd_step(ctx, [ctx.alloc((8,))], [])

    def test_collectives_use_nccl_kernels(self, ctx):
        t = ctx.alloc((1024,))
        ops.all_reduce(ctx, t, world_size=2)
        assert any("nccl" in n for n in kernel_names(ctx))


class TestModules:
    def test_parameters_require_materialization(self, ctx):
        layer = Linear(16, 8)
        with pytest.raises(ModelError):
            layer.get_parameter("weight")
        layer.materialize(ctx)
        assert layer.get_parameter("weight").shape == (8, 16)
        assert layer.get_parameter("weight").is_parameter

    def test_sequential_forward_and_scopes(self, ctx):
        model = Sequential(Linear(32, 64, name="fc1"), ReLU(name="relu"), Linear(64, 8, name="fc2"))
        model.materialize(ctx)
        out = model(ctx, ctx.alloc((4, 32)))
        assert out.shape == (4, 8)

    def test_parameter_bytes_counts_subtree(self, ctx):
        model = Sequential(Linear(32, 64), Linear(64, 8))
        model.materialize(ctx)
        expected = (64 * 32 + 64 + 8 * 64 + 8) * 4
        assert model.parameter_bytes() == expected

    def test_train_eval_propagates(self):
        model = Sequential(Linear(8, 8), Dropout(0.1))
        model.train()
        assert all(m.training for m in model.modules())
        model.eval()
        assert not any(m.training for m in model.modules())

    def test_training_backward_collects_param_grads(self, ctx):
        layer = Linear(16, 8)
        layer.materialize(ctx)
        layer.train()
        out = layer(ctx, ctx.alloc((4, 16)))
        grad = ctx.alloc(out.shape)
        layer.backward(ctx, grad)
        grads = layer.collect_param_grads()
        assert len(grads) == 2  # weight and bias
        layer.clear_grads()
        assert layer.collect_param_grads() == []

    def test_backward_without_forward_raises(self, ctx):
        layer = Linear(16, 8)
        layer.materialize(ctx)
        layer.train()
        with pytest.raises(ModelError):
            layer.backward(ctx, ctx.alloc((4, 8)))

    def test_attention_head_divisibility(self):
        with pytest.raises(ShapeError):
            MultiheadSelfAttention(hidden=100, num_heads=7)

    def test_attention_forward_shape(self, ctx):
        attn = MultiheadSelfAttention(hidden=64, num_heads=4)
        attn.materialize(ctx)
        out = attn(ctx, ctx.alloc((2, 16, 64)))
        assert out.shape == (2, 16, 64)

    def test_transformer_layer_roundtrip(self, ctx):
        layer = TransformerLayer(hidden=64, num_heads=4)
        layer.materialize(ctx)
        layer.train()
        x = ctx.alloc((2, 16, 64))
        out = layer(ctx, x)
        assert out.shape == x.shape
        grad = layer.backward(ctx, ctx.alloc(out.shape))
        assert grad.shape[-1] == 64

    def test_transformer_layer_with_cross_attention_has_more_params(self, ctx):
        plain = TransformerLayer(hidden=64, num_heads=4)
        cross = TransformerLayer(hidden=64, num_heads=4, cross_attention=True)
        plain.materialize(ctx)
        cross.materialize(ctx)
        assert cross.parameter_bytes() > plain.parameter_bytes()

    def test_embedding_module(self, ctx):
        emb = Embedding(1000, 64)
        emb.materialize(ctx)
        out = emb(ctx, ctx.alloc((2, 10), dtype=DType.INT64))
        assert out.shape == (2, 10, 64)

    def test_eval_mode_frees_intermediates(self, ctx):
        layer = TransformerLayer(hidden=64, num_heads=4)
        layer.materialize(ctx)
        layer.eval()
        allocated_before = ctx.allocator.stats.allocated_bytes
        x = ctx.alloc((2, 16, 64))
        out = layer(ctx, x)
        # Only the input, the output and the persistent BLAS workspace remain
        # live (plus parameters that were live before).
        live_now = ctx.allocator.stats.allocated_bytes
        budget = allocated_before + x.nbytes + out.nbytes + ctx.backend.gemm_workspace_bytes + 4096
        assert live_now <= budget
