"""Tests for kernel launches, grid configs and access-trace generation."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.gpusim.kernel import (
    Dim3,
    GridConfig,
    KernelArgument,
    KernelLaunch,
    estimate_kernel_duration_ns,
)


def make_launch(args, grid=None) -> KernelLaunch:
    return KernelLaunch(
        kernel_name="test_kernel",
        grid_config=grid or GridConfig(grid=Dim3(4), block=Dim3(128)),
        arguments=tuple(args),
        duration_ns=1000,
    )


class TestDim3AndGrid:
    def test_dim3_total(self):
        assert Dim3(2, 3, 4).total == 24

    def test_dim3_rejects_zero(self):
        with pytest.raises(KernelError):
            Dim3(0)

    def test_grid_totals(self):
        cfg = GridConfig(grid=Dim3(10), block=Dim3(256))
        assert cfg.total_blocks == 10
        assert cfg.threads_per_block == 256
        assert cfg.total_threads == 2560

    def test_for_elements_ceil_division(self):
        cfg = GridConfig.for_elements(1000, threads_per_block=256)
        assert cfg.grid.x == 4
        assert cfg.total_threads >= 1000

    def test_for_elements_rejects_non_positive(self):
        with pytest.raises(KernelError):
            GridConfig.for_elements(0)


class TestKernelArgument:
    def test_referenced_bytes_and_access_count(self):
        arg = KernelArgument(address=0x1000, size=1000, accessed_fraction=0.5,
                             accesses_per_byte=1.0)
        assert arg.referenced_bytes == 500
        assert arg.access_count == 500

    def test_unreferenced_argument_has_no_accesses(self):
        arg = KernelArgument(address=0x1000, size=1000, accessed_fraction=0.0)
        assert arg.referenced_bytes == 0
        assert arg.access_count == 0

    def test_validation(self):
        with pytest.raises(KernelError):
            KernelArgument(address=0, size=-1)
        with pytest.raises(KernelError):
            KernelArgument(address=0, size=10, accessed_fraction=1.5)
        with pytest.raises(KernelError):
            KernelArgument(address=0, size=10, accesses_per_byte=-0.1)


class TestKernelLaunchMetrics:
    def test_footprint_working_set_and_accesses(self):
        args = [
            KernelArgument(address=0x1000, size=1000, accessed_fraction=1.0, accesses_per_byte=1.0),
            KernelArgument(address=0x10000, size=2000, accessed_fraction=0.5, accesses_per_byte=1.0),
            KernelArgument(address=0x20000, size=4000, accessed_fraction=0.0),
        ]
        launch = make_launch(args)
        assert launch.memory_footprint_bytes == 7000
        assert launch.working_set_bytes == 2000
        assert launch.total_memory_accesses == 2000
        assert len(launch.accessed_arguments()) == 2

    def test_working_set_never_exceeds_footprint(self):
        args = [KernelArgument(address=0x1000, size=4096, accessed_fraction=0.7)]
        launch = make_launch(args)
        assert launch.working_set_bytes <= launch.memory_footprint_bytes

    def test_launch_ids_are_unique_and_increasing(self):
        a = make_launch([])
        b = make_launch([])
        assert b.launch_id > a.launch_id


class TestTraceGeneration:
    def test_accesses_respect_budget(self):
        args = [KernelArgument(address=0x1000, size=1 << 20, accesses_per_byte=1.0)]
        launch = make_launch(args)
        records = launch.generate_accesses(max_records=100)
        assert len(records) == 100

    def test_accesses_fall_inside_arguments(self):
        args = [
            KernelArgument(address=0x100000, size=4096, accesses_per_byte=1.0),
            KernelArgument(address=0x200000, size=4096, accesses_per_byte=1.0),
        ]
        launch = make_launch(args)
        for record in launch.generate_accesses(max_records=500):
            inside = any(a.address <= record.address < a.address + a.size for a in args)
            assert inside

    def test_trace_is_deterministic(self):
        args = [KernelArgument(address=0x1000, size=65536, accesses_per_byte=0.5)]
        launch = make_launch(args)
        first = launch.generate_accesses(max_records=64)
        second = launch.generate_accesses(max_records=64)
        assert first == second

    def test_no_accesses_for_empty_arguments(self):
        launch = make_launch([])
        assert launch.generate_accesses() == []

    def test_write_flags_follow_argument_direction(self):
        read_only = make_launch(
            [KernelArgument(address=0x1000, size=4096, is_read=True, is_written=False,
                            accesses_per_byte=1.0)]
        )
        assert all(not r.is_write for r in read_only.generate_accesses(max_records=64))
        write_only = make_launch(
            [KernelArgument(address=0x1000, size=4096, is_read=False, is_written=True,
                            accesses_per_byte=1.0)]
        )
        assert all(r.is_write for r in write_only.generate_accesses(max_records=64))

    def test_instruction_stream_contains_block_markers_and_accesses(self):
        launch = make_launch(
            [KernelArgument(address=0x1000, size=4096, accesses_per_byte=1.0)],
            grid=GridConfig(grid=Dim3(2), block=Dim3(64)),
        )
        records = launch.generate_instructions(max_records=32)
        kinds = {r.kind.value for r in records}
        assert "block_entry" in kinds
        assert "block_exit" in kinds
        assert "global_load" in kinds or "global_store" in kinds


class TestDurationEstimate:
    def test_memory_bound_kernel(self):
        # Huge bytes, negligible flops: duration tracks bandwidth.
        ns = estimate_kernel_duration_ns(flop_count=1.0, bytes_moved=2e9,
                                         device_tflops=20.0, device_bandwidth_gbs=2000.0)
        assert ns == pytest.approx(4_000 + 1e6, rel=0.01)

    def test_compute_bound_kernel(self):
        ns = estimate_kernel_duration_ns(flop_count=2e12, bytes_moved=1.0,
                                         device_tflops=20.0, device_bandwidth_gbs=2000.0)
        assert ns == pytest.approx(4_000 + 1e8, rel=0.01)

    def test_launch_overhead_floor(self):
        assert estimate_kernel_duration_ns(0.0, 0.0) == 4_000
