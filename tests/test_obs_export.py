"""Tests for telemetry exporters (:mod:`repro.obs.export`) and run history
(:mod:`repro.obs.history`): Chrome traces, folded stacks, list/diff."""

from __future__ import annotations

import json

import pytest

from repro.commands import main
from repro.errors import ReproError
from repro.obs import (
    RunIndex,
    chrome_trace,
    deactivate,
    diff_runs,
    export_chrome,
    export_folded,
    folded_stacks,
    index_run,
    merge_folded,
    read_records,
    render_diff,
    render_folded,
    render_run_list,
    reset_logging,
    resolve_run_records,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    deactivate()
    reset_logging()
    yield
    deactivate()
    reset_logging()


# ---------------------------------------------------------------------- #
# synthetic record builders (timestamps under test control)
# ---------------------------------------------------------------------- #
def _manifest(run_id="run-a", created_unix=1_000.0, pid=4242, rank=0,
              provenance=None):
    return {
        "type": "manifest", "schema": 1, "run_id": run_id,
        "created_unix": created_unix, "pid": pid, "rank": rank,
        "repro_version": "0.test", "provenance": dict(provenance or {}),
    }


def _span(span_id, name, *, parent_id=None, start_unix=1_000.0,
          wall_ns=1_000_000, cpu_ns=None, status="ok", attrs=None,
          counters=None, error=None):
    record = {
        "type": "span", "span_id": span_id, "parent_id": parent_id,
        "name": name, "start_unix": start_unix, "wall_ns": wall_ns,
        "status": status, "attrs": dict(attrs or {}),
        "counters": dict(counters or {}),
    }
    if cpu_ns is not None:
        record["cpu_ns"] = cpu_ns
    if error is not None:
        record["error"] = error
    return record


def _metrics(counters=None, gauges=None):
    return {"type": "metrics", "counters": dict(counters or {}),
            "gauges": dict(gauges or {}), "histograms": {}}


def _overhead():
    return {"type": "self_overhead", "telemetry_enabled": True,
            "spans_recorded": 1, "records_written": 1, "telemetry_ns": 100}


def _x_events(document):
    return [e for e in document["traceEvents"] if e.get("ph") == "X"]


def _write_run(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n",
                    encoding="utf-8")


# ---------------------------------------------------------------------- #
# chrome trace export
# ---------------------------------------------------------------------- #
class TestChromeTrace:
    def test_spans_become_duration_events_in_microseconds(self):
        records = [
            _manifest(pid=7),
            _span(2, "child", parent_id=1, start_unix=1_000.001,
                  wall_ns=2_000_000, cpu_ns=1_500_000),
            _span(1, "profile.run", start_unix=1_000.0, wall_ns=5_000_000,
                  counters={"events": 3}),
        ]
        document = chrome_trace([records])
        by_name = {e["name"]: e for e in _x_events(document)}
        root, child = by_name["profile.run"], by_name["child"]
        assert (root["ts"], root["dur"]) == (0.0, 5_000.0)
        assert (child["ts"], child["dur"]) == (1_000.0, 2_000.0)
        assert root["pid"] == child["pid"] == 7
        assert root["tid"] == child["tid"] == 0
        assert root["cat"] == "profile"
        assert root["args"]["counters"] == {"events": 3}
        assert child["args"]["cpu_ns"] == 1_500_000
        assert validate_chrome_trace(document)["spans"] == 2

    def test_rank_attrs_map_to_distinct_tid_lanes(self):
        records = [
            _manifest(),
            _span(2, "session.run", parent_id=1, start_unix=1_000.001,
                  attrs={"rank": 0}),
            _span(3, "rank.step", parent_id=2, start_unix=1_000.0015,
                  wall_ns=100_000),
            _span(4, "session.run", parent_id=1, start_unix=1_000.002,
                  attrs={"rank": 1}),
            _span(1, "profile.simulate", start_unix=1_000.0,
                  wall_ns=10_000_000),
        ]
        document = chrome_trace([records])
        lanes = {e["name"]: e["tid"] for e in _x_events(document)}
        assert lanes["profile.simulate"] == 0
        assert lanes["session.run"] in (1, 2)  # dict kept the last duplicate
        tids = sorted(e["tid"] for e in _x_events(document)
                      if e["name"] == "session.run")
        assert tids == [1, 2]
        # A rank span's children inherit its lane.
        assert lanes["rank.step"] == 1
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {0: "main", 1: "rank 0", 2: "rank 1"}
        validate_chrome_trace(document)

    def test_children_clamped_into_parent_interval(self):
        # Wall-clock rounding can put a child's start marginally before its
        # parent's; the export must still emit a monotonically consistent lane.
        records = [
            _manifest(),
            _span(2, "child", parent_id=1, start_unix=999.9995,
                  wall_ns=2_000_000),
            _span(1, "parent", start_unix=1_000.0, wall_ns=1_000_000),
        ]
        document = chrome_trace([records])
        by_name = {e["name"]: e for e in _x_events(document)}
        assert (by_name["parent"]["ts"], by_name["parent"]["dur"]) == (0.0, 1_000.0)
        assert (by_name["child"]["ts"], by_name["child"]["dur"]) == (0.0, 1_000.0)
        validate_chrome_trace(document)

    def test_counters_become_two_point_series(self):
        records = [
            _manifest(),
            _span(1, "run", start_unix=1_000.0, wall_ns=4_000_000),
            _metrics(counters={"jobs_ok": 3}),
            _overhead(),
        ]
        document = chrome_trace([records])
        counter_events = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert [(e["ts"], e["args"]["value"]) for e in counter_events] == [
            (0.0, 0), (4_000.0, 3)]
        assert validate_chrome_trace(document)["counters"] == 2

    def test_events_become_instants(self):
        records = [
            _manifest(),
            {"type": "event", "name": "provenance", "ts_unix": 1_000.002,
             "attrs": {"digest": "abc"}},
            _span(1, "run", start_unix=1_000.0, wall_ns=4_000_000),
        ]
        document = chrome_trace([records])
        (instant,) = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "provenance"
        assert instant["ts"] == 2_000.0
        assert instant["args"] == {"digest": "abc"}

    def test_merging_runs_shares_origin_and_dedups_pids(self):
        run_a = [
            _manifest(run_id="aaa", created_unix=1_000.0, pid=50, rank=0),
            _span(1, "session.run", start_unix=1_000.0),
        ]
        run_b = [
            _manifest(run_id="bbb", created_unix=1_001.0, pid=50, rank=1),
            _span(1, "session.run", start_unix=1_001.0),
        ]
        document = chrome_trace([run_a, run_b])
        spans = _x_events(document)
        assert sorted(e["pid"] for e in spans) == [50, 51]
        # Run B starts one second after the shared origin.
        later = next(e for e in spans if e["pid"] == 51)
        assert later["ts"] == 1_000_000.0
        runs_meta = document["otherData"]["runs"]
        assert [r["run_id"] for r in runs_meta] == ["aaa", "bbb"]
        validate_chrome_trace(document)

    def test_json_roundtrip(self):
        records = [
            _manifest(provenance={"spec_digest": "d" * 16}),
            _span(1, "run", start_unix=1_000.0),
            _metrics(counters={"a": 1}),
        ]
        document = export_chrome([records])
        revived = json.loads(json.dumps(document, sort_keys=True))
        assert validate_chrome_trace(revived) == validate_chrome_trace(document)

    def test_empty_runs_rejected(self):
        with pytest.raises(ReproError, match="at least one"):
            chrome_trace([])


class TestChromeValidator:
    def test_counts_every_event_kind(self):
        records = [
            _manifest(),
            {"type": "event", "name": "note", "ts_unix": 1_000.001, "attrs": {}},
            _span(1, "run", start_unix=1_000.0, wall_ns=2_000_000),
            _metrics(counters={"a": 1}),
        ]
        counts = validate_chrome_trace(chrome_trace([records]))
        assert counts["spans"] == 1
        assert counts["instants"] == 1
        assert counts["counters"] == 2
        assert counts["metadata"] == 2  # process_name + main lane
        assert counts["events"] == sum(
            counts[k] for k in ("spans", "instants", "counters", "metadata"))

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ReproError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ReproError, match="unsupported ph"):
            validate_chrome_trace({"traceEvents": [
                {"name": "b", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]})

    def test_rejects_missing_or_mistyped_fields(self):
        event = {"name": "s", "ph": "X", "ts": 0, "dur": True,
                 "pid": 1, "tid": 0}
        with pytest.raises(ReproError, match="field 'dur'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_negative_timestamps(self):
        event = {"name": "s", "ph": "X", "ts": -1.0, "dur": 2.0,
                 "pid": 1, "tid": 0}
        with pytest.raises(ReproError, match="negative"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_counter_without_value(self):
        event = {"name": "c", "ph": "C", "ts": 0, "pid": 1, "tid": 0,
                 "args": {}}
        with pytest.raises(ReproError, match="lacks args.value"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_partially_overlapping_lane(self):
        def x(name, ts, dur, tid=0):
            return {"name": name, "ph": "X", "ts": ts, "dur": dur,
                    "pid": 1, "tid": tid}

        with pytest.raises(ReproError, match="partially overlapping"):
            validate_chrome_trace({"traceEvents": [x("a", 0, 10), x("b", 5, 10)]})
        # Proper nesting and disjoint spans are fine; so is the same overlap
        # split across two lanes.
        validate_chrome_trace({"traceEvents": [
            x("a", 0, 10), x("b", 0, 4), x("c", 4, 4), x("d", 10, 5)]})
        validate_chrome_trace({"traceEvents": [x("a", 0, 10), x("b", 5, 10, tid=1)]})


# ---------------------------------------------------------------------- #
# folded stacks
# ---------------------------------------------------------------------- #
class TestFoldedStacks:
    def test_weights_are_self_time_microseconds(self):
        records = [
            _manifest(),
            _span(2, "child", parent_id=1, start_unix=1_000.001,
                  wall_ns=2_000_000),
            _span(1, "root", start_unix=1_000.0, wall_ns=5_000_000),
        ]
        assert folded_stacks(records) == {"root": 3_000, "root;child": 2_000}

    def test_fully_covered_parent_contributes_no_line(self):
        records = [
            _manifest(),
            _span(2, "child", parent_id=1, start_unix=1_000.0,
                  wall_ns=5_000_000),
            _span(1, "root", start_unix=1_000.0, wall_ns=5_000_000),
        ]
        assert folded_stacks(records) == {"root;child": 5_000}

    def test_rank_attr_inserts_synthetic_frame(self):
        records = [
            _manifest(),
            _span(2, "session.run", parent_id=1, start_unix=1_000.001,
                  wall_ns=2_000_000, attrs={"rank": 1}),
            _span(1, "root", start_unix=1_000.0, wall_ns=5_000_000),
        ]
        assert "root;rank 1;session.run" in folded_stacks(records)
        assert "root;session.run" in folded_stacks(records, rank_frames=False)

    def test_semicolons_in_names_are_sanitized(self):
        records = [_manifest(), _span(1, "odd;name", start_unix=1_000.0)]
        assert list(folded_stacks(records)) == ["odd:name"]

    def test_merge_and_render(self):
        merged = merge_folded([{"a": 1, "a;b": 2}, {"a": 3, "c": 4}])
        assert merged == {"a": 4, "a;b": 2, "c": 4}
        assert render_folded(merged) == "a 4\na;b 2\nc 4"

    def test_export_folded_returns_rendered_text(self):
        records = [_manifest(), _span(1, "root", start_unix=1_000.0,
                                      wall_ns=3_000_000)]
        assert export_folded([records, records]) == "root 6000"


# ---------------------------------------------------------------------- #
# run history: index, list, resolve
# ---------------------------------------------------------------------- #
def _run_records(run_id, *, created_unix=1_000.0, digest="cafe" * 8,
                 wall_ns=10_000_000, closed=True, rank=0, pid=4242):
    records = [
        _manifest(run_id=run_id, created_unix=created_unix, rank=rank, pid=pid,
                  provenance={"spec_digest": digest, "model": "gpt2"}),
        _span(2, "profile.simulate", parent_id=1, start_unix=created_unix,
              wall_ns=int(wall_ns * 0.8)),
        _span(1, "cli.profile", start_unix=created_unix, wall_ns=wall_ns),
        _metrics(counters={"processor.events_processed": 10}),
    ]
    if closed:
        records.append(_overhead())
    return records


class TestRunIndex:
    def test_index_run_reads_manifest_and_aggregates(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        _write_run(path, _run_records("abc123", wall_ns=10_000_000))
        entry = index_run(path)
        assert entry.run_id == "abc123"
        assert entry.spans == 2
        assert entry.wall_ns == 10_000_000  # root spans only, no double count
        assert entry.errors == 0
        assert entry.closed is True
        assert entry.spec_digest == "cafe" * 8
        assert json.loads(json.dumps(entry.to_dict()))["run_id"] == "abc123"

    def test_crashed_run_detected(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        _write_run(path, _run_records("abc123", closed=False))
        assert index_run(path).closed is False
        assert "crashed" in render_run_list([index_run(path)])

    def test_scan_skips_non_telemetry_jsonl(self, tmp_path):
        _write_run(tmp_path / "r1" / "telemetry.jsonl",
                   _run_records("aaa111", created_unix=1_000.0))
        _write_run(tmp_path / "r2" / "telemetry.jsonl",
                   _run_records("bbb222", created_unix=2_000.0))
        (tmp_path / "status.jsonl").write_text(
            '{"type": "campaign", "event": "start"}\n', encoding="utf-8")
        index = RunIndex(tmp_path)
        # Newest first; the status stream is skipped, not fatal.
        assert [e.run_id for e in index] == ["bbb222", "aaa111"]
        assert len(index) == 2
        assert [p.name for p in index.skipped] == ["status.jsonl"]

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no telemetry root"):
            RunIndex(tmp_path / "nope")

    def test_resolve_by_prefix_path_ambiguity_and_missing(self, tmp_path):
        _write_run(tmp_path / "r1" / "telemetry.jsonl", _run_records("aaa111"))
        _write_run(tmp_path / "r2" / "telemetry.jsonl", _run_records("aab222"))
        index = RunIndex(tmp_path)
        assert index.resolve("aaa").run_id == "aaa111"
        assert index.resolve(str(tmp_path / "r2")).run_id == "aab222"
        with pytest.raises(ReproError, match="ambiguous"):
            index.resolve("aa")
        with pytest.raises(ReproError, match="no telemetry run matching"):
            index.resolve("zzz")

    def test_by_digest_groups_comparable_runs(self, tmp_path):
        _write_run(tmp_path / "r1" / "telemetry.jsonl",
                   _run_records("aaa111", digest="d1" * 16))
        _write_run(tmp_path / "r2" / "telemetry.jsonl",
                   _run_records("bbb222", digest="d1" * 16))
        _write_run(tmp_path / "r3" / "telemetry.jsonl",
                   _run_records("ccc333", digest="d2" * 16))
        groups = RunIndex(tmp_path).by_digest()
        assert sorted(len(v) for v in groups.values()) == [1, 2]

    def test_resolve_run_records_path_wins_without_scanning(self, tmp_path):
        path = tmp_path / "r1" / "telemetry.jsonl"
        _write_run(path, _run_records("aaa111"))
        entry, records = resolve_run_records(str(path), root=tmp_path / "gone")
        assert entry.run_id == "aaa111"
        assert records[0]["type"] == "manifest"

    def test_render_run_list(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        _write_run(path, _run_records("abc123"))
        text = render_run_list([index_run(path)])
        assert "run" in text and "digest" in text
        assert "abc123" in text and "closed" in text and "model=gpt2" in text
        assert render_run_list([]) == "no telemetry runs found"


# ---------------------------------------------------------------------- #
# cross-run diffs
# ---------------------------------------------------------------------- #
class TestDiffRuns:
    def test_regression_past_threshold_is_flagged(self):
        baseline = _run_records("base", wall_ns=10_000_000)
        current = _run_records("cur", wall_ns=12_000_000)
        result = diff_runs(baseline, current, threshold=0.05)
        row = result["spans"]["cli.profile"]
        assert row["regressed"] is True
        assert row["wall_delta_ns"] == 2_000_000
        assert row["ratio"] == pytest.approx(1.2)
        assert result["regressions"] == 2  # simulate span scaled with it
        assert result["same_spec"] is True
        # A generous threshold absorbs the same delta.
        assert diff_runs(baseline, current, threshold=0.5)["regressions"] == 0

    def test_improvement_and_parity_not_flagged(self):
        baseline = _run_records("base", wall_ns=10_000_000)
        assert diff_runs(baseline, _run_records("cur", wall_ns=9_000_000))[
            "regressions"] == 0
        assert diff_runs(baseline, _run_records("cur", wall_ns=10_000_000))[
            "regressions"] == 0

    def test_min_wall_floor_suppresses_jitter(self):
        baseline = _run_records("base", wall_ns=400_000)
        current = _run_records("cur", wall_ns=800_000)
        assert diff_runs(baseline, current)["regressions"] == 0
        assert diff_runs(baseline, current, min_wall_ns=100_000)[
            "regressions"] == 2

    def test_only_in_rows_never_regress(self):
        baseline = [_manifest(run_id="base"),
                    _span(1, "gone", start_unix=1_000.0, wall_ns=5_000_000)]
        current = [_manifest(run_id="cur"),
                   _span(1, "new", start_unix=1_000.0, wall_ns=5_000_000)]
        result = diff_runs(baseline, current)
        assert result["spans"]["gone"]["only_in"] == "baseline"
        assert result["spans"]["new"]["only_in"] == "current"
        assert result["regressions"] == 0

    def test_counter_deltas(self):
        baseline = [_manifest(run_id="base"), _metrics(counters={"a": 2, "b": 5})]
        current = [_manifest(run_id="cur"), _metrics(counters={"a": 4, "c": 1})]
        counters = diff_runs(baseline, current)["counters"]
        assert counters["a"] == {"baseline": 2, "current": 4, "delta": 2}
        assert counters["b"]["delta"] == -5
        assert counters["c"]["delta"] == 1

    def test_different_digests_warn_in_render(self):
        baseline = _run_records("base", digest="d1" * 16)
        current = _run_records("cur", digest="d2" * 16)
        result = diff_runs(baseline, current)
        assert result["same_spec"] is False
        assert "WARNING: runs have different spec digests" in render_diff(result)

    def test_render_diff_flags_and_summary_line(self):
        result = diff_runs(_run_records("base", wall_ns=10_000_000),
                           _run_records("cur", wall_ns=20_000_000))
        text = render_diff(result)
        assert "REGRESSED" in text
        assert text.endswith("2 span(s) regressed")

    def test_result_is_json_native(self):
        result = diff_runs(_run_records("base"), _run_records("cur"))
        assert json.loads(json.dumps(result, sort_keys=True)) == result

    def test_negative_threshold_rejected(self):
        with pytest.raises(ReproError, match="threshold"):
            diff_runs(_run_records("a"), _run_records("b"), threshold=-0.1)


# ---------------------------------------------------------------------- #
# CLI: export / list / diff
# ---------------------------------------------------------------------- #
class TestCli:
    def test_chrome_export_of_fine_grained_gpt2_roundtrips_validator(
            self, tmp_path, capsys):
        # Acceptance gate: a fine-grained gpt2 run exports to a Chrome trace
        # that passes the strict validator after a JSON round-trip, with
        # monotonically consistent timestamps and counter series present.
        assert main(["profile", "gpt2", "--tool", "kernel_frequency",
                     "--fine-grained", "--json",
                     "--telemetry", str(tmp_path / "obs")]) == 0
        capsys.readouterr()
        out = tmp_path / "trace.chrome.json"
        assert main(["telemetry", "export", str(tmp_path / "obs"),
                     "--format", "chrome", "-o", str(out)]) == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        counts = validate_chrome_trace(document)
        assert counts["spans"] >= 4
        assert counts["counters"] > 0
        names = {e["name"] for e in document["traceEvents"]}
        assert {"cli.profile", "profile.simulate", "session.run"} <= names

    def test_folded_export_cli(self, tmp_path, capsys):
        assert main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2", "--json",
                     "--telemetry", str(tmp_path / "obs")]) == 0
        capsys.readouterr()
        assert main(["telemetry", "export", str(tmp_path / "obs"),
                     "--format", "folded"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.strip().splitlines() if line]
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert any(line.startswith("cli.profile") for line in lines)

    def test_single_run_formats_reject_multiple_targets(self, tmp_path, capsys):
        _write_run(tmp_path / "r1" / "telemetry.jsonl", _run_records("aaa"))
        _write_run(tmp_path / "r2" / "telemetry.jsonl", _run_records("bbb"))
        assert main(["telemetry", "export", str(tmp_path / "r1"),
                     str(tmp_path / "r2"), "--format", "json"]) == 1
        assert "single run" in capsys.readouterr().err

    def test_list_cli_text_and_json(self, tmp_path, capsys):
        _write_run(tmp_path / "r1" / "telemetry.jsonl",
                   _run_records("aaa111", created_unix=1_000.0))
        _write_run(tmp_path / "r2" / "telemetry.jsonl",
                   _run_records("bbb222", created_unix=2_000.0))
        assert main(["telemetry", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "aaa111" in out and "bbb222" in out
        assert main(["telemetry", "list", str(tmp_path), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["run_id"] for e in entries] == ["bbb222", "aaa111"]

    def test_diff_cli_exit_code_is_the_regression_gate(self, tmp_path, capsys):
        # Acceptance gate: two same-digest runs, current regressed past
        # --threshold => non-zero exit; generous threshold => zero.
        _write_run(tmp_path / "base" / "telemetry.jsonl",
                   _run_records("aaa111", wall_ns=10_000_000))
        _write_run(tmp_path / "cur" / "telemetry.jsonl",
                   _run_records("bbb222", wall_ns=15_000_000))
        assert main(["telemetry", "diff", str(tmp_path / "base"),
                     str(tmp_path / "cur"), "--threshold", "0.10"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "WARNING" not in out
        assert main(["telemetry", "diff", str(tmp_path / "base"),
                     str(tmp_path / "cur"), "--threshold", "2.0"]) == 0

    def test_diff_cli_resolves_run_id_prefixes_and_emits_json(
            self, tmp_path, capsys):
        _write_run(tmp_path / "base" / "telemetry.jsonl",
                   _run_records("aaa111", wall_ns=10_000_000))
        _write_run(tmp_path / "cur" / "telemetry.jsonl",
                   _run_records("bbb222", wall_ns=10_000_000))
        assert main(["telemetry", "diff", "aaa", "bbb",
                     "--root", str(tmp_path), "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["baseline"]["run_id"] == "aaa111"
        assert result["current"]["run_id"] == "bbb222"
        assert result["regressions"] == 0

    def test_summary_and_top_json_flags(self, tmp_path, capsys):
        _write_run(tmp_path / "telemetry.jsonl", _run_records("aaa111"))
        assert main(["telemetry", "summary", str(tmp_path),
                     "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["run_id"] == "aaa111"
        assert main(["telemetry", "top", str(tmp_path), "--format", "json"]) == 0
        ranked = json.loads(capsys.readouterr().out)
        assert ranked[0]["self_wall_ns"] >= ranked[-1]["self_wall_ns"]


# ---------------------------------------------------------------------- #
# multi-rank merge (satellite): TP world_size=2 => one coherent trace
# ---------------------------------------------------------------------- #
class TestMultiRankMerge:
    def test_tp_run_exports_distinct_rank_lanes(self, tmp_path, capsys):
        assert main(["profile", "megatron_gpt2_345m", "--tool",
                     "kernel_frequency", "--parallel", "tp",
                     "--world-size", "2", "--iterations", "2", "--json",
                     "--telemetry", str(tmp_path / "obs")]) == 0
        capsys.readouterr()
        records = read_records(tmp_path / "obs")
        document = export_chrome([records])
        session_lanes = {e["tid"] for e in _x_events(document)
                         if e["name"] == "session.run"}
        assert session_lanes == {1, 2}  # rank 0 and rank 1, no interleaving
        thread_names = {e["args"]["name"] for e in document["traceEvents"]
                        if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"main", "rank 0", "rank 1"} <= thread_names

    def test_per_rank_files_merge_and_stay_diffable(self, tmp_path):
        # Per-rank manifests (rank= in the sink) merge into one trace with
        # one pid lane group per rank, and the merged runs remain diff-able
        # as an aggregate against a baseline of the same shape.
        from repro.obs import Telemetry

        for rank in range(2):
            telemetry = Telemetry.open(
                tmp_path / f"rank{rank}", rank=rank,
                provenance={"spec_digest": "e" * 32})
            with telemetry.span("session.run", rank=rank):
                pass
            telemetry.close()
        runs = [read_records(tmp_path / "rank0"),
                read_records(tmp_path / "rank1")]
        document = export_chrome(runs)
        assert len({e["pid"] for e in _x_events(document)}) == 2
        merged = runs[0] + [r for r in runs[1] if r.get("type") == "span"]
        result = diff_runs(merged, merged)
        assert result["regressions"] == 0
        assert result["spans"]["session.run"]["baseline_count"] == 2
