"""Tests for the model zoo, the execution engine, optimizers and backends."""

from __future__ import annotations

import pytest

from repro.errors import FrameworkError, ModelError
from repro.dlframework.backend import CUDA_BACKEND, HIP_BACKEND, backend_for_device
from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.dlframework.models import (
    MODEL_ABBREVIATIONS,
    MODEL_REGISTRY,
    PAPER_MODELS,
    create_model,
)
from repro.dlframework.models.megatron import MegatronConfig, MegatronGpt2
from repro.dlframework.optim import Adam, SGD
from repro.gpusim.device import A100, MI300X
from repro.gpusim.runtime import create_runtime


class TestModelRegistry:
    def test_registry_contains_the_six_paper_models(self):
        for name in PAPER_MODELS:
            assert name in MODEL_REGISTRY
            assert name in MODEL_ABBREVIATIONS

    def test_create_model_unknown_name(self):
        with pytest.raises(ModelError):
            create_model("resnet50")

    @pytest.mark.parametrize("name", PAPER_MODELS)
    def test_model_metadata_matches_table_iv(self, name):
        model = create_model(name)
        assert model.model_name == name
        assert model.default_batch_size >= 1
        expected_type = "Transformer" if name in ("bert", "gpt2", "whisper") else "CNN"
        assert model.model_type == expected_type

    def test_paper_batch_sizes(self):
        assert create_model("alexnet").default_batch_size == 128
        assert create_model("resnet18").default_batch_size == 32
        assert create_model("gpt2").default_batch_size == 8
        assert create_model("bert").default_batch_size == 16
        assert create_model("whisper").default_batch_size == 16


@pytest.mark.parametrize("name", PAPER_MODELS)
class TestModelExecution:
    def test_inference_runs_and_launches_kernels(self, name, a100_ctx, a100_engine):
        model = create_model(name)
        a100_engine.prepare(model)
        summary = a100_engine.run_inference(model, iterations=1, batch_size=2)
        assert summary.kernel_launches > 10
        assert summary.peak_allocated_bytes > 0
        assert summary.mode == "inference"

    def test_training_is_heavier_than_inference(self, name, a100_runtime):
        infer_ctx = FrameworkContext(create_runtime(A100))
        train_ctx = FrameworkContext(create_runtime(A100))
        infer_model, train_model = create_model(name), create_model(name)
        infer_engine, train_engine = ExecutionEngine(infer_ctx), ExecutionEngine(train_ctx)
        infer_engine.prepare(infer_model)
        train_engine.prepare(train_model)
        infer = infer_engine.run_inference(infer_model, batch_size=2)
        train = train_engine.run_training(train_model, batch_size=2)
        assert train.kernel_launches > infer.kernel_launches
        assert train.peak_allocated_bytes > infer.peak_allocated_bytes


class TestEngineBehaviour:
    def test_transients_released_between_iterations(self, a100_ctx, a100_engine):
        model = create_model("resnet18")
        a100_engine.prepare(model)
        a100_engine.run_inference(model, iterations=2, batch_size=2)
        # After the run, only parameters remain allocated.
        assert a100_ctx.allocator.stats.allocated_bytes <= model.parameter_bytes() * 1.05

    def test_keep_transients_flag(self, a100_ctx, a100_engine):
        model = create_model("resnet18")
        a100_engine.prepare(model)
        a100_engine.run_inference(model, iterations=1, batch_size=2, keep_transients=True)
        assert a100_ctx.allocator.stats.allocated_bytes > model.parameter_bytes()

    def test_run_summary_fields(self, a100_engine):
        model = create_model("alexnet")
        a100_engine.prepare(model)
        summary = a100_engine.run_inference(model, batch_size=4)
        data = summary.as_dict()
        assert data["model"] == "alexnet"
        assert data["iterations"] == 1
        assert data["total_kernel_time_ns"] > 0


class TestOptimizers:
    def test_adam_allocates_two_state_buffers_per_param(self, a100_ctx):
        model = create_model("alexnet")
        model.materialize(a100_ctx)
        params = list(model.parameters())
        optimizer = Adam(params)
        engine = ExecutionEngine(a100_ctx)
        engine.run_training_step(model, optimizer, batch_size=2)
        assert optimizer.state_bytes() == 2 * sum(p.nbytes for p in params)

    def test_adam_state_is_persistent_across_steps(self, a100_ctx):
        model = create_model("resnet18")
        model.materialize(a100_ctx)
        optimizer = Adam(list(model.parameters()))
        engine = ExecutionEngine(a100_ctx)
        engine.run_training_step(model, optimizer, batch_size=2)
        first = optimizer.state_bytes()
        engine.run_training_step(model, optimizer, batch_size=2)
        assert optimizer.state_bytes() == first

    def test_sgd_has_no_state(self, a100_ctx):
        model = create_model("resnet18")
        model.materialize(a100_ctx)
        optimizer = SGD(list(model.parameters()))
        engine = ExecutionEngine(a100_ctx)
        engine.run_training_step(model, optimizer, batch_size=2)
        assert not hasattr(optimizer, "state_bytes") or optimizer.__class__ is SGD

    def test_optimizer_requires_parameters(self):
        with pytest.raises(FrameworkError):
            SGD([])


class TestBackendDifferences:
    def test_backend_selection_by_vendor(self):
        assert backend_for_device(A100) is CUDA_BACKEND
        assert backend_for_device(MI300X) is HIP_BACKEND

    def test_kernel_names_differ_across_vendors(self):
        assert "ampere" in CUDA_BACKEND.gemm_kernel_name(512, 512, 512)
        assert "Cijk" in HIP_BACKEND.gemm_kernel_name(512, 512, 512)
        assert CUDA_BACKEND.conv_kernel_names() != HIP_BACKEND.conv_kernel_names()

    def test_figure14_shape_nvidia_fewer_events_higher_peak(self):
        """One GPT-2 training iteration: CUDA issues fewer alloc events than HIP."""
        results = {}
        for spec, backend in ((A100, CUDA_BACKEND), (MI300X, HIP_BACKEND)):
            ctx = FrameworkContext(create_runtime(spec), backend=backend)
            engine = ExecutionEngine(ctx)
            model = create_model("gpt2")
            engine.prepare(model)
            engine.run_training(model, iterations=1, batch_size=2)
            results[backend.name] = (ctx.allocator.event_count,
                                     ctx.allocator.stats.peak_allocated_bytes)
        cuda_events, cuda_peak = results["cuda"]
        hip_events, hip_peak = results["hip"]
        assert cuda_events < hip_events
        assert cuda_peak >= hip_peak * 0.95  # NVIDIA peak is slightly higher (or equal)

    def test_both_backends_show_ramp_up_peak_ramp_down(self):
        """The three-phase allocator pattern of Figure 14 holds on both backends."""
        for spec, backend in ((A100, CUDA_BACKEND), (MI300X, HIP_BACKEND)):
            ctx = FrameworkContext(create_runtime(spec), backend=backend)
            engine = ExecutionEngine(ctx)
            model = create_model("gpt2")
            engine.prepare(model)
            engine.run_training(model, iterations=1, batch_size=2)
            timeline = [usage for _idx, usage in ctx.allocator.usage_timeline]
            peak = max(timeline)
            peak_index = timeline.index(peak)
            assert timeline[0] < peak           # ramp up
            assert timeline[-1] < peak          # ramp down
            assert 0 < peak_index < len(timeline) - 1


class TestMegatron:
    def test_full_model_configuration(self):
        model = MegatronGpt2()
        assert model.paper_layer_count == 24
        assert len(model.layers) == 24
        assert model.is_first_stage and model.is_last_stage

    def test_tensor_parallel_shard_has_fewer_parameters(self, a100_ctx):
        full = MegatronGpt2()
        shard = MegatronGpt2(tensor_parallel_size=2)
        ctx2 = FrameworkContext(create_runtime(A100))
        full.materialize(a100_ctx)
        shard.materialize(ctx2)
        assert shard.parameter_bytes() < full.parameter_bytes()

    def test_pipeline_stages_split_layers(self):
        first = MegatronGpt2(pipeline_stage=(0, 2))
        last = MegatronGpt2(pipeline_stage=(1, 2))
        assert len(first.layers) == 12 and len(last.layers) == 12
        assert first.is_first_stage and not first.is_last_stage
        assert last.is_last_stage and not last.is_first_stage
        # Only the last stage owns the LM head.
        assert hasattr(last, "lm_head") and not hasattr(first, "lm_head")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ModelError):
            MegatronGpt2(pipeline_stage=(3, 2))
        with pytest.raises(ModelError):
            MegatronGpt2(MegatronConfig(hidden=1023), tensor_parallel_size=2)
