"""Shared conformance suite for every :class:`CacheBackend` implementation.

PR 8 left one open item: the campaign cache assumed a shared filesystem.
This suite pins the backend *contract* — get/put/contains semantics,
quarantine-on-corruption, stats accounting — and runs it identically against

* the on-disk :class:`~repro.campaign.cache.ResultCache`, and
* the HTTP-backed :class:`~repro.campaign.cache_http.HttpResultCache`
  talking to a live ``pasta serve`` daemon (whose own file store does the
  server-side quarantining),

so the two stay interchangeable behind ``pasta campaign run --cache-url``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.campaign.cache import (
    QUARANTINE_SUFFIX,
    CacheBackend,
    ResultCache,
)
from repro.campaign.cache_http import HttpResultCache
from repro.errors import ReproError
from repro.serve.daemon import PastaDaemon

DIGEST = "ab" * 16
OTHER = "cd" * 16

RECORD = {
    "job": {"model": "alexnet", "tools": ["hotness"]},
    "status": "ok",
    "summary": {"events": 123, "ratio": 1.5, "note": "ünïcode ✓"},
    "reports": {"hotness": {"top": [1, 2, 3], "nested": {"deep": None}}},
}


@dataclass
class BackendHarness:
    """One backend under test plus a handle on its underlying file store."""

    cache: CacheBackend
    #: The file store physically holding entries (the backend itself for the
    #: file flavour; the daemon's store for the HTTP flavour).
    file_store: ResultCache


@pytest.fixture(params=["file", "http"])
def harness(request, tmp_path: Path):
    if request.param == "file":
        store = ResultCache(tmp_path / "cache")
        yield BackendHarness(cache=store, file_store=store)
    else:
        with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
            daemon.start()
            yield BackendHarness(
                cache=HttpResultCache(daemon.url),
                file_store=daemon.manager.cache,
            )


class TestCacheBackendConformance:
    def test_satisfies_protocol(self, harness: BackendHarness) -> None:
        assert isinstance(harness.cache, CacheBackend)

    def test_absent_digest_is_none_miss(self, harness: BackendHarness) -> None:
        assert harness.cache.get(DIGEST) is None
        assert harness.cache.stats.misses == 1
        assert harness.cache.stats.hits == 0
        assert harness.cache.contains(DIGEST) is False

    def test_put_get_round_trips_exactly(self, harness: BackendHarness) -> None:
        harness.cache.put(DIGEST, RECORD)
        assert harness.cache.stats.writes == 1
        fetched = harness.cache.get(DIGEST)
        assert fetched == RECORD
        assert harness.cache.stats.hits == 1
        assert harness.cache.contains(DIGEST) is True
        assert harness.cache.contains(OTHER) is False

    def test_last_write_wins(self, harness: BackendHarness) -> None:
        harness.cache.put(DIGEST, {"version": 1})
        harness.cache.put(DIGEST, {"version": 2})
        assert harness.cache.get(DIGEST) == {"version": 2}

    def test_corrupt_entry_is_quarantined_miss(self, harness: BackendHarness) -> None:
        harness.cache.put(DIGEST, RECORD)
        # Corrupt the physical entry behind the backend's back (a torn
        # writer / bit rot), wherever it actually lives.
        path = harness.file_store.path_for(DIGEST)
        path.write_text('{"torn": ')

        assert harness.cache.get(DIGEST) is None  # a miss, not an error
        tombstone = path.with_name(path.name + QUARANTINE_SUFFIX)
        assert tombstone.exists(), "corrupt entry must be quarantined aside"
        assert not path.exists()

        # The slot is refillable: the next put/get cycle works normally.
        harness.cache.put(DIGEST, RECORD)
        assert harness.cache.get(DIGEST) == RECORD


class TestHttpBackendSpecifics:
    def test_rejects_non_http_url(self) -> None:
        with pytest.raises(ReproError, match="http"):
            HttpResultCache("ftp://example.com")

    def test_unreachable_daemon_is_loud(self) -> None:
        cache = HttpResultCache("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ReproError, match="cannot reach"):
            cache.get(DIGEST)
        with pytest.raises(ReproError, match="cannot reach"):
            cache.put(DIGEST, {"x": 1})

    def test_bad_digest_rejected_by_daemon(self, tmp_path: Path) -> None:
        with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
            daemon.start()
            cache = HttpResultCache(daemon.url)
            with pytest.raises(ReproError, match="HTTP 400"):
                cache.put("NOT-HEX", {"x": 1})


class TestCampaignOverHttpCache:
    def test_campaign_run_with_cache_url(self, tmp_path: Path) -> None:
        """``pasta campaign run --cache-url`` shares results via the daemon."""
        import json

        from repro.commands import main

        spec = {
            "name": "http-cache-campaign",
            "models": ["alexnet"],
            "tools": [],
            "iterations": 1,
            "knob_sweep": [{"end_grid_id": 30_000_000 + i} for i in range(3)],
        }
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(json.dumps(spec))

        with PastaDaemon(tmp_path / "serve", workers=1) as daemon:
            daemon.start()
            argv = ["campaign", "run", str(spec_path),
                    "--cache-url", daemon.url, "--json"]
            assert main(argv) == 0
            # Every result landed in the daemon's cache over HTTP...
            store_stats = daemon.manager.cache.stats
            assert len(daemon.manager.cache.entries()) == 3
            assert store_stats.writes == 3
            # ...so an identical rerun stores nothing new: every cell is
            # served back out of the daemon's store.
            assert main(argv) == 0
            assert store_stats.writes == 3
            assert store_stats.hits >= 3
