"""Unit tests for the self-telemetry layer (:mod:`repro.obs`)."""

from __future__ import annotations

import json
import logging
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.obs import (
    NULL_INSTRUMENT,
    NULL_SPAN,
    NULL_TELEMETRY,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    activated,
    active,
    build_tree,
    configure_logging,
    deactivate,
    from_env,
    get_logger,
    manifest_of,
    metrics_of,
    parse_level,
    read_records,
    render_summary,
    render_top,
    render_tree,
    reset_logging,
    self_overhead_of,
    span_records,
    summarize,
    telemetry_path,
    top_spans,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Keep the process-global telemetry and logging state test-hermetic."""
    deactivate()
    reset_logging()
    yield
    deactivate()
    reset_logging()


# ---------------------------------------------------------------------- #
# spans
# ---------------------------------------------------------------------- #
class TestSpans:
    def test_nesting_parent_child_depth(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
            assert tracer.current is outer
        # Children emit before parents (they close first).
        assert [r["name"] for r in emitted] == ["inner", "outer"]
        assert emitted[0]["parent_id"] == emitted[1]["span_id"]
        assert all(r["wall_ns"] >= 0 for r in emitted)

    def test_exception_marks_error_and_propagates(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("fails"):
                raise ValueError("boom")
        (record,) = emitted
        assert record["status"] == "error"
        assert "ValueError: boom" in record["error"]

    def test_crash_closes_orphaned_children_innermost_first(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        outer = tracer.span("outer")
        tracer.span("left_open")
        tracer.span("also_open")
        outer.finish()
        assert [r["name"] for r in emitted] == ["also_open", "left_open", "outer"]
        assert tracer.spans_opened == tracer.spans_closed == 3

    def test_finish_is_idempotent(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        span = tracer.span("once")
        span.finish()
        span.finish()
        assert len(emitted) == 1
        assert tracer.spans_closed == 1

    def test_counters_and_attrs(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        with tracer.span("count", model="gpt2") as span:
            span.add("events", 5)
            span.add("events", 7)
            span.set_counter("rate", 12.5)
            span.set_attr("late", True)
        (record,) = emitted
        assert record["counters"] == {"events": 12, "rate": 12.5}
        assert record["attrs"] == {"model": "gpt2", "late": True}

    def test_synthetic_record_parents_to_current(self):
        emitted = []
        tracer = SpanTracer(emit=emitted.append)
        with tracer.span("parent") as parent:
            record = tracer.record("job", 1_000_000, attrs={"j": 1},
                                   status="error", error="KaboomError: no")
        assert record["parent_id"] == parent.span_id
        assert record["wall_ns"] == 1_000_000
        assert emitted[0] is record

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.add("x")
            span.set_counter("y", 1)
            span.set_attr("z", "v")
        assert span.to_record() == {}
        assert NULL_SPAN.counters == {}

    def test_self_time_accounted(self):
        tracer = SpanTracer(emit=lambda record: None)
        with tracer.span("timed"):
            pass
        assert tracer.self_time_ns > 0


# ---------------------------------------------------------------------- #
# metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(4)
        assert counter.as_value() == 5
        with pytest.raises(ReproError, match="cannot decrease"):
            counter.inc(-1)

    def test_histogram_bucket_edges_inclusive_upper(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        # Exactly on an edge counts toward the bucket the edge bounds.
        hist.observe(1.0)
        hist.observe(10.0)
        hist.observe(0.5)
        hist.observe(10.1)   # overflow (+inf) bucket
        value = hist.as_value()
        assert value["counts"] == [2, 1, 1]
        assert value["count"] == 4
        assert value["min"] == 0.5
        assert value["max"] == 10.1

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ReproError, match="at least one bucket"):
            Histogram("empty", buckets=())
        with pytest.raises(ReproError, match="strictly increasing"):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_registry_get_or_create_shares_instances(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h", (1.0,)) is registry.histogram("h", (1.0,))
        with pytest.raises(ReproError, match="already exists"):
            registry.histogram("h", (2.0,))
        assert len(registry) == 3

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1.0,)).observe(0.2)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc(5)
        NULL_INSTRUMENT.set(2)
        NULL_INSTRUMENT.observe(0.1)
        assert NULL_INSTRUMENT.as_value() == 0

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 0.5):
            hist.observe(value)
        # p50 lands at the top of the first bucket (2 of 4 observations).
        assert hist.percentile(0.50) == pytest.approx(0.1)
        # p95 interpolates inside the second bucket, then clamps to max.
        assert hist.percentile(0.95) == pytest.approx(0.5)
        assert hist.percentile(1.0) == pytest.approx(0.5)

    def test_percentile_clamped_to_observed_range(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(5.0)
        # One observation: every quantile is that observation, not a bucket
        # midpoint outside what was seen.
        assert hist.percentile(0.50) == 5.0
        assert hist.percentile(0.99) == 5.0

    def test_percentile_overflow_bucket_uses_observed_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(7.5)
        assert hist.percentile(0.99) == 7.5

    def test_percentile_edge_cases(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.percentile(0.5) is None  # no observations yet
        with pytest.raises(ReproError, match="percentile"):
            hist.percentile(0.0)
        with pytest.raises(ReproError, match="percentile"):
            hist.percentile(1.5)

    def test_as_value_carries_percentile_estimates(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.2, 0.9):
            hist.observe(value)
        value = hist.as_value()
        assert value["p50"] <= value["p95"] <= value["p99"] <= value["max"]
        json.dumps(value)


# ---------------------------------------------------------------------- #
# sink
# ---------------------------------------------------------------------- #
class TestSink:
    def test_round_trip_with_manifest_provenance(self, tmp_path):
        sink = JsonlSink(telemetry_path(tmp_path), rank=2,
                         provenance={"campaign": "sweep"}, argv=["profile", "gpt2"])
        sink.write({"type": "span", "name": "x", "wall_ns": 10})
        sink.annotate_provenance(spec_digest="abc123")
        sink.close([{"type": "metrics"}])

        records = read_records(tmp_path)
        manifest = manifest_of(records)
        assert manifest["type"] == "manifest"
        assert manifest["rank"] == 2
        assert manifest["argv"] == ["profile", "gpt2"]
        assert manifest["provenance"]["campaign"] == "sweep"
        # annotate_provenance merges late-bound fields into the manifest view.
        assert manifest["provenance"]["spec_digest"] == "abc123"
        import repro
        assert manifest["repro_version"] == repro.__version__
        assert records[-1]["type"] == "metrics"
        assert [r["type"] for r in records if r["type"] == "span"] == ["span"]

    def test_telemetry_path_directory_vs_file(self, tmp_path):
        assert telemetry_path(tmp_path).name == "telemetry.jsonl"
        explicit = tmp_path / "custom.jsonl"
        assert telemetry_path(explicit) == explicit

    def test_reader_tolerates_torn_final_line(self, tmp_path):
        path = telemetry_path(tmp_path)
        sink = JsonlSink(path)
        sink.write({"type": "span", "name": "kept"})
        sink.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "torn')  # crash mid-write
        names = [r.get("name") for r in read_records(path) if r["type"] == "span"]
        assert names == ["kept"]

    def test_close_idempotent_counts_records(self, tmp_path):
        sink = JsonlSink(telemetry_path(tmp_path))
        sink.write({"type": "event", "name": "e"})
        assert sink.records_written == 2  # manifest + event
        sink.close()
        sink.close()
        assert len(read_records(tmp_path)) == 2


# ---------------------------------------------------------------------- #
# telemetry facade
# ---------------------------------------------------------------------- #
class TestTelemetry:
    def test_open_span_metrics_close(self, tmp_path):
        telemetry = Telemetry.open(tmp_path)
        with telemetry.span("root", kind="test"):
            with telemetry.span("child"):
                telemetry.counter("widgets").inc(3)
        telemetry.close()
        records = read_records(tmp_path)
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["child", "root"]
        metrics = [r for r in records if r["type"] == "metrics"]
        assert metrics and metrics[0]["counters"]["widgets"] == 3
        overhead = [r for r in records if r["type"] == "self_overhead"]
        assert overhead and overhead[0]["spans_recorded"] == 2
        assert overhead[0]["telemetry_enabled"] is True

    def test_close_finishes_open_root_and_reports_fraction(self, tmp_path):
        telemetry = Telemetry.open(tmp_path)
        telemetry.span("left.open")
        telemetry.close()
        records = read_records(tmp_path)
        assert [r["name"] for r in records if r["type"] == "span"] == ["left.open"]
        overhead = [r for r in records if r["type"] == "self_overhead"][0]
        assert overhead["wall_ns_with_telemetry"] > 0
        assert 0.0 <= overhead["overhead_fraction"] <= 1.0

    def test_activation_scoping(self, tmp_path):
        assert active() is NULL_TELEMETRY
        telemetry = Telemetry.open(tmp_path)
        with activated(telemetry):
            assert active() is telemetry
        assert active() is NULL_TELEMETRY
        assert telemetry.closed

    def test_from_env(self, tmp_path):
        assert from_env({}) is NULL_TELEMETRY
        assert from_env({"PASTA_TELEMETRY": ""}) is NULL_TELEMETRY
        telemetry = from_env({"PASTA_TELEMETRY": str(tmp_path)})
        assert telemetry.enabled
        telemetry.close()
        assert telemetry_path(tmp_path).exists()

    def test_null_telemetry_is_no_op(self):
        assert NULL_TELEMETRY.span("x") is NULL_SPAN
        assert NULL_TELEMETRY.counter("c") is NULL_INSTRUMENT
        assert NULL_TELEMETRY.gauge("g") is NULL_INSTRUMENT
        assert NULL_TELEMETRY.histogram("h") is NULL_INSTRUMENT
        NULL_TELEMETRY.event("e", a=1)
        NULL_TELEMETRY.record_span("s", 10)
        NULL_TELEMETRY.annotate(x=1)
        NULL_TELEMETRY.close()
        assert NULL_TELEMETRY.elapsed_ns() is None
        assert NULL_TELEMETRY.self_overhead_report() == {"telemetry_enabled": False}

    def test_debug_log_mirror(self, tmp_path, capsys):
        configure_logging("debug")
        telemetry = Telemetry.open(tmp_path)
        with telemetry.span("mirrored"):
            pass
        telemetry.close()
        err = capsys.readouterr().err
        assert "span mirrored" in err


# ---------------------------------------------------------------------- #
# logging
# ---------------------------------------------------------------------- #
class TestLogging:
    def test_loggers_namespaced_under_repro(self):
        assert get_logger("obs").name == "repro.obs"
        assert get_logger("repro.campaign").name == "repro.campaign"
        assert get_logger(None).name == "repro"

    def test_parse_level(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level("WARNING") == logging.WARNING
        with pytest.raises(ValueError):
            parse_level("loud")

    def test_configure_logging_idempotent(self):
        configure_logging("info")
        configure_logging("debug")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.level == logging.DEBUG
        assert root.propagate is False


# ---------------------------------------------------------------------- #
# report
# ---------------------------------------------------------------------- #
def _sample_records(tmp_path) -> list[dict[str, object]]:
    telemetry = Telemetry.open(tmp_path)
    with telemetry.span("run") as run:
        with telemetry.span("setup"):
            pass
        with telemetry.span("simulate") as sim:
            sim.set_counter("events", 100)
        run.set_attr("model", "gpt2")
    telemetry.close()
    return read_records(tmp_path)


class TestReport:
    def test_build_tree_and_summarize(self, tmp_path):
        records = _sample_records(tmp_path)
        roots = build_tree(span_records(records))
        assert [n.name for n in roots] == ["run"]
        assert sorted(c.name for c in roots[0].children) == ["setup", "simulate"]
        summary = summarize(records)
        assert summary["spans"] == 3
        assert summary["roots"] == ["run"]
        assert summary["errors"] == 0
        assert 0.0 <= summary["coverage"] <= 1.0
        assert summary["by_name"]["simulate"]["count"] == 1

    def test_top_spans_ranked_by_self_time(self, tmp_path):
        records = _sample_records(tmp_path)
        ranked = top_spans(records, limit=2)
        assert len(ranked) == 2
        assert ranked[0]["self_wall_ns"] >= ranked[1]["self_wall_ns"]

    def test_renderers_produce_text(self, tmp_path):
        records = _sample_records(tmp_path)
        summary_text = render_summary(summarize(records))
        assert "coverage" in summary_text
        top_text = render_top(top_spans(records))
        assert "self" in top_text
        tree_text = render_tree(records)
        assert "run" in tree_text and "  setup" in tree_text

    def test_summarize_requires_manifest(self):
        with pytest.raises(ReproError):
            summarize([{"type": "span", "name": "x"}])


# ---------------------------------------------------------------------- #
# serialisation details
# ---------------------------------------------------------------------- #
def test_records_are_plain_json(tmp_path):
    records = _sample_records(tmp_path)
    for record in records:
        json.dumps(record)  # raises on anything non-JSON-native


def test_null_telemetry_pickles_to_shared_instance():
    # Process-pool workers may capture the module default; pickling must not
    # explode (identity across processes is not required).
    assert pickle.loads(pickle.dumps(NULL_TELEMETRY)).enabled is False


# ---------------------------------------------------------------------- #
# flush hardening: checkpoints, span-wall histogram, crash survival
# ---------------------------------------------------------------------- #
class TestTelemetryHardening:
    def test_span_wall_histogram_in_self_overhead(self, tmp_path):
        telemetry = Telemetry.open(tmp_path)
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        telemetry.close()
        records = read_records(tmp_path)
        hist = self_overhead_of(records)["span_wall_s"]
        assert hist["count"] == 2
        assert hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]
        summary_text = render_summary(summarize(records))
        assert "span wall:" in summary_text

    def test_registry_histograms_rendered_in_summary(self, tmp_path):
        telemetry = Telemetry.open(tmp_path)
        telemetry.histogram("job_s", (1.0, 10.0)).observe(0.5)
        with telemetry.span("run"):
            pass
        telemetry.close()
        text = render_summary(summarize(read_records(tmp_path)))
        assert "job_s: n=1" in text and "p95=" in text

    def test_periodic_checkpoint_writes_partial_metrics(self, tmp_path):
        telemetry = Telemetry.open(tmp_path, checkpoint_interval_s=0.0001)
        telemetry.counter("work").inc()
        time.sleep(0.002)
        with telemetry.span("first"):
            pass
        # Before close: the span close tripped a partial metrics checkpoint.
        partial = [r for r in read_records(tmp_path) if r["type"] == "metrics"]
        assert partial and partial[-1]["partial"] is True
        assert partial[-1]["counters"]["work"] == 1
        telemetry.counter("work").inc()
        telemetry.close()
        records = read_records(tmp_path)
        final = [r for r in records if r["type"] == "metrics"][-1]
        # The closing snapshot has no partial flag and supersedes every
        # checkpoint for readers (metrics_of keeps the last record).
        assert "partial" not in final
        assert metrics_of(records)["counters"]["work"] == 2

    def test_checkpointing_disabled_with_nonpositive_interval(self, tmp_path):
        telemetry = Telemetry.open(tmp_path, checkpoint_interval_s=0.0)
        telemetry.counter("work").inc()
        time.sleep(0.002)
        with telemetry.span("first"):
            pass
        assert [r for r in read_records(tmp_path) if r["type"] == "metrics"] == []
        telemetry.close()

    def _run_script(self, body: str) -> subprocess.CompletedProcess:
        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run([sys.executable, "-c", body], env=env,
                              capture_output=True, text=True, timeout=60)

    def test_atexit_flushes_closing_records_without_close(self, tmp_path):
        # A run that exits without calling close() (sys.exit, uncaught error)
        # still gets its metrics snapshot and self_overhead via atexit.
        proc = self._run_script(
            "from repro.obs import Telemetry\n"
            f"telemetry = Telemetry.open({str(tmp_path)!r})\n"
            "telemetry.span('left.open')\n"
            "telemetry.counter('jobs').inc(2)\n"
        )
        assert proc.returncode == 0, proc.stderr
        records = read_records(tmp_path)
        assert [r["name"] for r in records if r["type"] == "span"] == ["left.open"]
        assert metrics_of(records)["counters"]["jobs"] == 2
        assert self_overhead_of(records) is not None

    def test_sigkill_keeps_last_flushed_span_readable(self, tmp_path):
        # SIGKILL cannot be caught by any handler: flush-per-write is the
        # safety net.  Every span closed before the kill must be readable.
        proc = self._run_script(
            "import os, signal\n"
            "from repro.obs import Telemetry\n"
            f"telemetry = Telemetry.open({str(tmp_path)!r})\n"
            "outer = telemetry.span('outer')\n"
            "with telemetry.span('flushed.child'):\n"
            "    pass\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        assert proc.returncode == -signal.SIGKILL
        records = read_records(tmp_path)
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["flushed.child"]  # outer never closed, child survived
        assert self_overhead_of(records) is None  # no clean close happened
        from repro.obs import index_run

        assert index_run(telemetry_path(tmp_path)).closed is False
