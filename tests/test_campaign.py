"""Tests for the campaign engine: specs, cache, store, scheduler, CLI."""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro
from repro import api
from repro.api import ProfileSpec, execute_payload
from repro.campaign import (
    CampaignScheduler,
    CampaignSpec,
    ResultCache,
    ResultStore,
    diff_records,
    overhead_model_comparison,
    render_table,
    rollup,
)
from repro.core.serialization import content_digest, json_roundtrip, json_sanitize
from repro.errors import ReproError


def campaign_main(argv):
    """Run the `pasta campaign` subcommand of the umbrella CLI."""
    from repro.commands import main

    return main(["campaign", *argv])


# ---------------------------------------------------------------------- #
# serialization helpers
# ---------------------------------------------------------------------- #
class TestJsonSanitize:
    def test_enums_tuples_and_sets_become_native(self):
        from repro.gpusim.device import Vendor

        value = {
            "vendor": Vendor.NVIDIA,
            ("a", 1): (1, 2, 3),
            "nested": {"s": {3, 1, 2}},
        }
        out = json_sanitize(value)
        assert out == {"vendor": "nvidia", "a,1": [1, 2, 3], "nested": {"s": [1, 2, 3]}}
        assert json.loads(json.dumps(out)) == out

    def test_numpy_like_scalars_unwrap(self):
        class FakeScalar:
            def item(self):
                return 7

        assert json_sanitize({"x": FakeScalar()}) == {"x": 7}

    def test_roundtrip_and_digest_stability(self):
        a = {"b": 1, "a": [1, 2]}
        b = {"a": [1, 2], "b": 1}
        assert json_roundtrip(a) == json_roundtrip(b)
        assert content_digest(a) == content_digest(b)
        assert content_digest(a) != content_digest(a, "other-version")


# ---------------------------------------------------------------------- #
# spec + grid expansion
# ---------------------------------------------------------------------- #
class TestSpecs:
    def test_grid_expansion_product(self):
        spec = CampaignSpec(
            name="grid",
            models=["alexnet", "resnet18", "bert"],
            devices=["a100", "rtx3060"],
            tools=["kernel_frequency", "memory_characteristics"],
        )
        jobs = spec.expand()
        assert len(jobs) == 3 * 2 * 2
        assert {j.model for j in jobs} == {"alexnet", "resnet18", "bert"}
        assert all(len(j.tools) == 1 for j in jobs)

    def test_tool_groups_and_knob_sweep(self):
        spec = CampaignSpec(
            name="axes",
            models=["alexnet"],
            tools=[["kernel_frequency", "memory_timeline"]],
            knob_sweep=[{}, {"start_grid_id": 0, "end_grid_id": 4}],
        )
        jobs = spec.expand()
        assert len(jobs) == 2
        assert jobs[0].tools == ("kernel_frequency", "memory_timeline")
        assert jobs[1].knob_dict == {"start_grid_id": 0, "end_grid_id": 4}

    def test_json_round_trip(self, tmp_path):
        spec = CampaignSpec(
            name="rt",
            models=["alexnet"],
            devices=["a100", "mi300x"],
            tools=["hotness"],
            analysis_models=["gpu_resident", "cpu_side"],
            batch_size=2,
            extra_jobs=[ProfileSpec(model="bert", tools=("kernel_frequency",))],
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = CampaignSpec.load(path)
        assert [j.to_dict() for j in loaded.expand()] == [j.to_dict() for j in spec.expand()]

    def test_invalid_specs_raise(self):
        with pytest.raises(ReproError):
            CampaignSpec(name="", models=["alexnet"])
        with pytest.raises(ReproError):
            CampaignSpec(name="x", models=[])
        with pytest.raises(ReproError):
            CampaignSpec(name="x", models=["alexnet"], modes=["predict"])
        with pytest.raises(ReproError):
            ProfileSpec(model="alexnet", mode="nope")
        with pytest.raises(ReproError):
            ProfileSpec(model="alexnet", knobs={"k": [1, 2]})  # type: ignore[dict-item]
        with pytest.raises(ReproError):
            CampaignSpec.from_dict({"name": "x", "models": ["a"], "wat": 1})
        with pytest.raises(ReproError, match="devices"):
            CampaignSpec(name="x", models=["alexnet"], devices=[])
        with pytest.raises(ReproError, match="modes"):
            CampaignSpec(name="x", models=["alexnet"], modes=[])

    def test_digest_is_stable_and_version_salted(self):
        a = ProfileSpec(model="alexnet", knobs={"b": 1, "a": 2})
        b = ProfileSpec(model="alexnet", knobs={"a": 2, "b": 1})
        assert a == b
        assert a.digest("1.0.0") == b.digest("1.0.0")
        assert a.digest("1.0.0") != a.digest("1.0.1")
        assert a.digest("1.0.0") != ProfileSpec(model="resnet18").digest("1.0.0")


# ---------------------------------------------------------------------- #
# store + cache
# ---------------------------------------------------------------------- #
class TestStore:
    def test_jsonl_round_trip_and_query(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append({"digest": "d1", "status": "ok", "job": {"model": "alexnet", "device": "a100"}})
        store.append({"digest": "d2", "status": "failed", "job": {"model": "bert", "device": "a100"}})
        store.append({"digest": "d1", "status": "ok", "job": {"model": "alexnet", "device": "a100"}, "n": 2})
        assert len(store) == 3
        assert store.load()[0]["job"]["model"] == "alexnet"
        assert [r["job"]["model"] for r in store.query(status="ok")] == ["alexnet", "alexnet"]
        assert store.query(device="a100", model="bert")[0]["status"] == "failed"
        latest = store.latest_by_digest()
        assert set(latest) == {"d1", "d2"}
        assert latest["d1"]["n"] == 2

    def test_corrupt_line_warns_and_skips_by_default(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        with pytest.warns(RuntimeWarning, match="r.jsonl:2"):
            records = ResultStore(path).load()
        assert [r["ok"] for r in records] == [1, 2]

    def test_corrupt_line_raises_with_location_in_strict_mode(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ReproError, match="r.jsonl:2"):
            ResultStore(path).load(strict=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        # A writer killed mid-append leaves half a record and no newline.
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\n{"ok": 2')
        with pytest.warns(RuntimeWarning, match="torn/corrupt"):
            records = ResultStore(path).load()
        assert [r["ok"] for r in records] == [1]

    def test_append_heals_newline_boundary_after_tear(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('{"ok": 1}\n{"torn": ')
        store = ResultStore(path)
        store.append({"ok": 3})
        with pytest.warns(RuntimeWarning):
            records = store.load()
        # The tear costs exactly one record; post-crash appends survive.
        assert [r.get("ok") for r in records] == [1, 3]
        assert path.read_text().endswith("\n")


class TestCache:
    def test_put_get_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "ab" + "0" * 62
        assert cache.get(digest) is None
        cache.put(digest, {"status": "ok"})
        assert cache.contains(digest)
        assert cache.get(digest) == {"status": "ok"}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(digest) is None

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "cd" + "0" * 62
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text("{broken")
        assert cache.get(digest) is None
        # The corrupt entry was moved aside, not left to fail every read.
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.stats.quarantined == 1
        assert cache.stats.as_dict()["quarantined"] == 1
        # The slot refills cleanly.
        cache.put(digest, {"status": "ok"})
        assert cache.get(digest) == {"status": "ok"}

    def test_clear_sweeps_quarantined_tombstones(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "ef" + "0" * 62
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True)
        path.write_text("not json")
        assert cache.get(digest) is None
        # The tombstone is not a cached result: clear() counts 0 removed
        # entries but still sweeps it.
        assert cache.clear() == 0
        assert list((tmp_path / "cache").glob("*/*")) == []

    def test_evict_tolerates_losing_the_unlink_race(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "12" + "0" * 62
        cache.put(digest, {"status": "ok"})
        assert cache.evict(digest) is True
        # A second evict (another scheduler got there first) is a calm False.
        assert cache.evict(digest) is False

    def test_clear_counts_only_what_this_call_removed(self, tmp_path):
        cache_a = ResultCache(tmp_path / "cache")
        cache_b = ResultCache(tmp_path / "cache")
        digests = [f"{i:02x}" + "0" * 62 for i in range(4)]
        for digest in digests:
            cache_a.put(digest, {"status": "ok"})
        # Another scheduler evicts two entries between walk and unlink.
        cache_b.evict(digests[0])
        cache_b.evict(digests[1])
        assert cache_a.clear() == 2
        assert cache_a.clear() == 0

    def test_concurrent_clears_never_raise_and_split_the_count(self, tmp_path):
        import threading as _threading

        cache = ResultCache(tmp_path / "cache")
        digests = [f"{i:02x}" + "0" * 62 for i in range(32)]
        for digest in digests:
            cache.put(digest, {"status": "ok"})
        counts = []
        workers = [
            _threading.Thread(
                target=lambda: counts.append(ResultCache(tmp_path / "cache").clear())
            )
            for _ in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        # Every entry was removed exactly once across the racing clears.
        assert sum(counts) == len(digests)
        assert len(cache) == 0

    def test_fsync_put_still_roundtrips(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fsync=True)
        digest = "34" + "0" * 62
        cache.put(digest, {"status": "ok", "n": 1})
        assert cache.get(digest) == {"status": "ok", "n": 1}


# ---------------------------------------------------------------------- #
# scheduler (stubbed runner: no simulation)
# ---------------------------------------------------------------------- #
def _stub_runner(payload):
    if payload["model"] == "explodes":
        raise RuntimeError("boom")
    return {
        "job": payload,
        "status": "ok",
        "summary": {"kernel_launches": 10, "total_kernel_time_ns": 1000,
                    "peak_allocated_bytes": 64},
        "reports": {"overhead": {"normalized_overhead": 2.0, "total_ns": 3000}},
    }


class TestScheduler:
    def _jobs(self, *models):
        return [ProfileSpec(model=m, tools=("kernel_frequency",)) for m in models]

    def test_failure_isolation_in_parallel_pool(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        sched = CampaignScheduler(jobs=4, job_runner=_stub_runner, store=store)
        result = sched.run(self._jobs("a", "explodes", "b", "c"), name="iso")
        assert result.total == 4
        assert result.executed == 3
        assert result.failed == 1
        failure = result.failures()[0]
        assert failure.job.model == "explodes"
        assert "boom" in failure.error
        stored = store.load()
        assert len(stored) == 4
        assert sum(1 for r in stored if r["status"] == "failed") == 1

    def test_retries_eventually_succeed(self):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _stub_runner(payload)

        sched = CampaignScheduler(jobs=1, executor="serial", retries=2, job_runner=flaky)
        result = sched.run(self._jobs("a"))
        assert result.executed == 1 and result.failed == 0
        assert calls["n"] == 3
        assert result.outcomes[0].record["attempts"] == 3

    def test_timeout_is_recorded_not_fatal(self):
        release = threading.Event()

        def slow(payload):
            if payload["model"] == "slow":
                release.wait(2.0)
            return _stub_runner(payload)

        sched = CampaignScheduler(jobs=2, timeout_s=0.2, job_runner=slow)
        result = sched.run(self._jobs("fast", "slow"), name="to")
        release.set()
        by_model = {o.job.model: o for o in result.outcomes}
        assert by_model["fast"].status == "ok"
        assert by_model["slow"].status == "timeout"
        assert "timeout" in by_model["slow"].error

    def test_cache_short_circuits_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        counter = {"n": 0}

        def counting(payload):
            counter["n"] += 1
            return _stub_runner(payload)

        sched = CampaignScheduler(jobs=2, cache=cache, job_runner=counting)
        jobs = self._jobs("a", "b", "c")
        first = sched.run(jobs)
        assert (first.executed, first.cached) == (3, 0)
        assert counter["n"] == 3
        second = sched.run(jobs)
        assert (second.executed, second.cached) == (0, 3)
        assert counter["n"] == 3  # nothing re-simulated
        assert all(o.record["job"]["model"] in "abc" for o in second.outcomes)

    def test_timeout_enforced_even_with_one_job_slot(self):
        release = threading.Event()

        def slow(payload):
            release.wait(2.0)
            return _stub_runner(payload)

        # jobs=1 (the CLI default) must still honour the timeout budget.
        sched = CampaignScheduler(jobs=1, timeout_s=0.1, job_runner=slow)
        result = sched.run(self._jobs("slow"))
        release.set()
        assert result.outcomes[0].status == "timeout"

    def test_queued_jobs_are_not_falsely_timed_out(self):
        def briefly_slow(payload):
            time.sleep(0.15)
            return _stub_runner(payload)

        # 4 jobs through 1 worker, each well under the 1s budget: the queued
        # ones must wait their turn, not inherit the head job's clock.
        sched = CampaignScheduler(jobs=1, executor="thread", timeout_s=1.0,
                                  job_runner=briefly_slow)
        result = sched.run(self._jobs("a", "b", "c", "d"))
        assert [o.status for o in result.outcomes] == ["ok"] * 4

    def test_results_are_persisted_as_jobs_complete(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        seen_counts = []

        def snooping(payload):
            seen_counts.append(len(store.load()))
            return _stub_runner(payload)

        sched = CampaignScheduler(jobs=1, executor="serial", store=store,
                                  job_runner=snooping)
        sched.run(self._jobs("a", "b", "c"))
        # by the time job N runs, jobs 0..N-1 are already on disk
        assert seen_counts == [0, 1, 2]

    def test_process_executor_rejects_custom_runner(self):
        with pytest.raises(ReproError):
            CampaignScheduler(executor="process", job_runner=_stub_runner)
        with pytest.raises(ReproError):
            CampaignScheduler(jobs=0)


# ---------------------------------------------------------------------- #
# real end-to-end campaign (acceptance criteria)
# ---------------------------------------------------------------------- #
class TestEndToEnd:
    def test_grid_runs_parallel_then_hits_cache_100_percent(self, tmp_path):
        spec = CampaignSpec(
            name="accept",
            models=["alexnet", "resnet18", "resnet34"],
            devices=["a100", "rtx3060"],
            tools=["kernel_frequency", "memory_characteristics"],
            batch_size=2,
        )
        assert spec.job_count() == 12
        cache = ResultCache(tmp_path / "cache")
        store = ResultStore(tmp_path / "results.jsonl")
        sched = CampaignScheduler(jobs=4, cache=cache, store=store)

        first = sched.run(spec)
        assert first.total == 12
        assert first.executed == 12 and first.failed == 0 and first.cached == 0
        for record in first.records():
            assert record["status"] == "ok"
            assert record["summary"]["kernel_launches"] > 0
            # every persisted record survives a JSON round trip unchanged
            assert json.loads(json.dumps(record)) == record

        second = sched.run(spec)
        assert second.total == 12
        assert second.executed == 0, "identical spec must re-simulate nothing"
        assert second.cached == 12 and second.failed == 0

        # cached records are byte-identical to the originals
        firsts = {o.digest: o.record for o in first.outcomes}
        for outcome in second.outcomes:
            assert outcome.record == firsts[outcome.digest]

    def test_spec_driven_payload_matches_direct_run(self):
        payload = ProfileSpec(
            model="alexnet", device="rtx3060", tools=("kernel_frequency",),
            batch_size=2, knobs={"start_grid_id": 0, "end_grid_id": 4},
        ).to_dict()
        record = execute_payload(payload)
        assert record["status"] == "ok"
        assert record["reports"]["kernel_frequency"]["total_launches"] == 5
        assert record["job"]["model"] == "alexnet"

    def test_analysis_model_knob_changes_overhead(self):
        gpu = execute_payload(ProfileSpec(model="alexnet", batch_size=2).to_dict())
        cpu = execute_payload(
            ProfileSpec(model="alexnet", batch_size=2, analysis_model="cpu_side").to_dict()
        )
        assert (cpu["reports"]["overhead"]["normalized_overhead"]
                > gpu["reports"]["overhead"]["normalized_overhead"])

    def test_unknown_knob_is_a_clean_error(self):
        with pytest.raises(ReproError, match="unknown knobs"):
            execute_payload(ProfileSpec(model="alexnet", knobs={"warp_speed": 9}).to_dict())
        with pytest.raises(ReproError, match="must be numeric"):
            execute_payload(
                ProfileSpec(model="alexnet", knobs={"collection_ns_per_record": "2.5"}).to_dict()
            )
        with pytest.raises(ReproError, match="integer grid id"):
            execute_payload(
                ProfileSpec(model="alexnet", knobs={"start_grid_id": "zero"}).to_dict()
            )


# ---------------------------------------------------------------------- #
# aggregation
# ---------------------------------------------------------------------- #
class TestAggregate:
    def _record(self, model, device, time_ns, overhead, analysis_model="gpu_resident"):
        return {
            "status": "ok",
            "digest": content_digest([model, device, analysis_model, time_ns]),
            "job": {"model": model, "device": device, "mode": "inference",
                    "tools": ["kernel_frequency"], "analysis_model": analysis_model},
            "summary": {"kernel_launches": 5, "total_kernel_time_ns": time_ns,
                        "peak_allocated_bytes": 100},
            "reports": {"overhead": {"normalized_overhead": overhead, "total_ns": time_ns * 2}},
        }

    def test_rollup_groups_and_averages(self):
        records = [
            self._record("alexnet", "a100", 100, 2.0),
            self._record("alexnet", "rtx3060", 300, 4.0),
            self._record("bert", "a100", 1000, 3.0),
        ]
        rows = rollup(records, by="model")
        assert [row["model"] for row in rows] == ["alexnet", "bert"]
        alexnet = rows[0]
        assert alexnet["jobs"] == 2
        assert alexnet["total_kernel_time_ns_mean"] == 200
        assert alexnet["normalized_overhead_max"] == 4.0
        with pytest.raises(ReproError):
            rollup(records, by="flavour")
        assert "alexnet" in render_table(rows)

    def test_overhead_model_comparison_ratio(self):
        records = [
            self._record("alexnet", "a100", 100, 2.0, "gpu_resident"),
            self._record("alexnet", "a100", 100, 8.0, "cpu_side"),
        ]
        rows = overhead_model_comparison(records)
        assert rows[0]["device"] == "a100"
        assert rows[0]["cpu_to_gpu_ratio"] == pytest.approx(4.0)

    def test_diff_flags_regressions(self):
        base = [self._record("alexnet", "a100", 100, 2.0)]
        good = [self._record("alexnet", "a100", 100, 2.0)]
        bad = [self._record("alexnet", "a100", 100, 2.6)]
        clean = diff_records(base, good)
        assert clean["matched"] == 1 and clean["regressions"] == 0
        flagged = diff_records(base, bad, threshold=0.1)
        assert flagged["regressions"] == 1
        cell = flagged["rows"][0]["metrics"]["normalized_overhead"]
        assert cell["regressed"] and cell["ratio"] == pytest.approx(1.3)


# ---------------------------------------------------------------------- #
# pasta-campaign CLI
# ---------------------------------------------------------------------- #
class TestCampaignCli:
    @pytest.fixture
    def spec_path(self, tmp_path):
        spec = {
            "name": "cli-sweep",
            "models": ["alexnet", "resnet18"],
            "devices": ["a100"],
            "tools": ["kernel_frequency"],
            "batch_size": 2,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_dry_run_lists_grid(self, spec_path, capsys):
        assert campaign_main(["run", str(spec_path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "2 jobs" in out
        assert "alexnet/a100/inference/kernel_frequency" in out

    def test_run_report_diff_clean_cycle(self, spec_path, tmp_path, capsys):
        cache = tmp_path / "cache"
        store = tmp_path / "results.jsonl"
        argv = ["run", str(spec_path), "--jobs", "4",
                "--cache-dir", str(cache), "--store", str(store), "--json"]
        assert campaign_main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["total"] == 2 and summary["executed"] == 2

        # identical rerun: all served from cache
        assert campaign_main(argv) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["executed"] == 0 and summary["cached"] == 2

        assert campaign_main(["report", str(store), "--by", "model", "--json"]) == 0
        tables = json.loads(capsys.readouterr().out)
        assert {row["model"] for row in tables["rollup"]} == {"alexnet", "resnet18"}

        assert campaign_main(["diff", str(store), str(store), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["matched"] == 2 and diff["regressions"] == 0

        assert campaign_main(["clean", "--cache-dir", str(cache)]) == 0
        assert "removed 2" in capsys.readouterr().out

    def test_missing_spec_is_clean_error(self, tmp_path, capsys):
        assert campaign_main(["run", str(tmp_path / "nope.json")]) == 1
        assert "not found" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# WorkloadResult conveniences
# ---------------------------------------------------------------------- #
class TestWorkloadResult:
    def test_tool_error_lists_attached_tools(self):
        from repro.tools.kernel_frequency import KernelFrequencyTool

        result = api.run("alexnet", device="rtx3060", batch_size=2,
                              tools=[KernelFrequencyTool()])
        assert result.report("kernel_frequency")["total_launches"] > 0
        with pytest.raises(ReproError) as excinfo:
            result.tool("hotness")
        assert "kernel_frequency" in str(excinfo.value)
        assert "hotness" in str(excinfo.value)

    def test_version_is_the_cache_salt(self):
        job = ProfileSpec(model="alexnet")
        assert job.digest(repro.__version__) == job.digest(repro.__version__)
        assert job.digest(repro.__version__) != job.digest("v-next")
