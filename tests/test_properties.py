"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.annotations import RangeFilter
from repro.core.events import KernelLaunchEvent
from repro.core.processor import PastaEventProcessor
from repro.dlframework.allocator import CachingAllocator, round_size
from repro.dlframework.tensor import DType, Tensor
from repro.gpusim.device import GpuDevice, RTX3060
from repro.gpusim.kernel import GridConfig, KernelArgument, KernelLaunch
from repro.gpusim.memory import DeviceMemoryAllocator, align_up
from repro.gpusim.runtime import create_runtime
from repro.gpusim.trace import AnalysisModel, TraceBuffer
from repro.gpusim.uvm import UVM_PAGE_BYTES, UvmManager
from repro.tools import KernelFrequencyTool

# --------------------------------------------------------------------------- #
# alignment and rounding
# --------------------------------------------------------------------------- #


@given(st.integers(min_value=-1000, max_value=1 << 30))
def test_align_up_is_aligned_and_monotone(nbytes):
    aligned = align_up(nbytes)
    assert aligned % 512 == 0
    assert aligned >= max(nbytes, 1)


@given(st.integers(min_value=1, max_value=1 << 28), st.integers(min_value=1, max_value=1 << 28))
def test_round_size_monotonicity(a, b):
    if a <= b:
        assert round_size(a) <= round_size(b)


# --------------------------------------------------------------------------- #
# tensors
# --------------------------------------------------------------------------- #


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4),
       st.sampled_from(list(DType)))
def test_tensor_size_invariants(shape, dtype):
    tensor = Tensor(shape=tuple(shape), dtype=dtype)
    assert tensor.numel == math.prod(shape)
    assert tensor.nbytes == tensor.numel * dtype.itemsize
    assert tensor.ndim == len(shape)


# --------------------------------------------------------------------------- #
# driver allocator
# --------------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8 * 1024 * 1024), min_size=1, max_size=40))
def test_driver_allocator_live_bytes_match_objects(sizes):
    allocator = DeviceMemoryAllocator(GpuDevice(spec=RTX3060))
    objects = [allocator.allocate(size) for size in sizes]
    assert allocator.live_bytes == sum(o.size for o in objects)
    # Lookup finds every object by an interior address, and addresses are disjoint.
    for obj in objects:
        assert allocator.lookup(obj.address + obj.size // 2) is obj
    for i, a in enumerate(objects):
        for b in objects[i + 1:]:
            assert not a.overlaps(b.address, b.size)
    for obj in objects:
        allocator.free(obj)
    assert allocator.live_bytes == 0


# --------------------------------------------------------------------------- #
# caching allocator
# --------------------------------------------------------------------------- #


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=1 << 20),
                          st.booleans()), min_size=1, max_size=60))
def test_caching_allocator_conservation(operations):
    """Allocated bytes always equal the sum of live tensors' block sizes, and
    reserved bytes never fall below allocated bytes."""
    allocator = CachingAllocator(create_runtime(RTX3060))
    live: list[Tensor] = []
    for nbytes, do_free in operations:
        tensor = allocator.allocate_tensor((nbytes,), dtype=DType.INT8)
        live.append(tensor)
        if do_free and live:
            allocator.free_tensor(live.pop(0))
        assert allocator.stats.allocated_bytes >= 0
        assert allocator.stats.reserved_bytes >= allocator.stats.allocated_bytes
        assert allocator.stats.peak_allocated_bytes >= allocator.stats.allocated_bytes
    allocator.free_tensors(live)
    assert allocator.stats.allocated_bytes == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=1 << 18), min_size=1, max_size=40))
def test_caching_allocator_tensors_stay_inside_their_segment(sizes):
    allocator = CachingAllocator(create_runtime(RTX3060))
    for nbytes in sizes:
        tensor = allocator.allocate_tensor((nbytes,), dtype=DType.INT8)
        segment = allocator.segment_for_address(tensor.address)
        assert segment is not None
        seg_obj = segment.memory_object
        assert seg_obj.address <= tensor.address
        assert tensor.address + tensor.nbytes <= seg_obj.address + seg_obj.size


# --------------------------------------------------------------------------- #
# kernel launches
# --------------------------------------------------------------------------- #

argument_strategy = st.builds(
    KernelArgument,
    address=st.integers(min_value=0x1000, max_value=1 << 40),
    size=st.integers(min_value=0, max_value=1 << 24),
    accessed_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    is_read=st.booleans(),
    is_written=st.booleans(),
    accesses_per_byte=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(argument_strategy, min_size=0, max_size=6))
def test_kernel_launch_metric_invariants(arguments):
    launch = KernelLaunch(kernel_name="k", grid_config=GridConfig.for_elements(256),
                          arguments=tuple(arguments))
    assert 0 <= launch.working_set_bytes <= launch.memory_footprint_bytes
    assert launch.total_memory_accesses >= 0
    records = launch.generate_accesses(max_records=128)
    assert len(records) <= 128
    for record in records:
        assert any(arg.address <= record.address < arg.address + max(arg.size, 1)
                   for arg in launch.accessed_arguments())


# --------------------------------------------------------------------------- #
# trace buffer
# --------------------------------------------------------------------------- #


@given(st.integers(min_value=0, max_value=10_000_000))
def test_trace_buffer_accounting_invariants(records):
    buffer = TraceBuffer()
    cpu = buffer.collect(records, AnalysisModel.CPU_SIDE)
    gpu = buffer.collect(records, AnalysisModel.GPU_RESIDENT)
    assert cpu.transferred_bytes >= gpu.transferred_bytes
    assert cpu.flush_rounds >= gpu.flush_rounds == 0
    if records:
        assert cpu.flush_rounds == math.ceil(records / buffer.capacity_records)


# --------------------------------------------------------------------------- #
# UVM residency
# --------------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=8),
                  st.booleans()),
        min_size=1, max_size=40,
    ),
)
def test_uvm_residency_never_exceeds_capacity(capacity_pages, operations):
    """Residency stays within capacity and page counters remain consistent."""
    uvm = UvmManager(GpuDevice(spec=RTX3060), device_capacity_bytes=capacity_pages * UVM_PAGE_BYTES)
    base = 0x100_0000_0000
    uvm.register_region(base, 64 * UVM_PAGE_BYTES)
    for page_index, length, prefetch in operations:
        address = base + page_index * UVM_PAGE_BYTES
        size = length * UVM_PAGE_BYTES
        if prefetch:
            cost = uvm.prefetch_range(address, size)
        else:
            cost = uvm.access_range(address, size)
        assert cost >= 0.0
        assert uvm.resident_pages <= capacity_pages
    stats = uvm.stats
    assert stats.pages_migrated_on_fault >= 0
    assert stats.refaults <= stats.pages_migrated_on_fault


# --------------------------------------------------------------------------- #
# range filter and processor dispatch
# --------------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50),
       st.integers(min_value=1, max_value=80))
def test_range_filter_counts_are_consistent(start, width, kernels):
    filt = RangeFilter()
    filt.set_grid_window(start, start + width)
    in_range = sum(1 for i in range(kernels) if filt.in_range(i))
    expected = len(range(start, min(kernels, start + width + 1))) if start < kernels else 0
    assert in_range == expected
    assert filt.kernels_in_range + filt.kernels_filtered == kernels


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["gemm", "copy", "softmax", "reduce"]), min_size=0, max_size=60))
def test_kernel_frequency_tool_total_matches_dispatched(names):
    processor = PastaEventProcessor(enable_gpu_preprocessing=False)
    tool = KernelFrequencyTool()
    processor.register_tool(tool)
    for index, name in enumerate(names):
        processor.submit(KernelLaunchEvent(kernel_name=name, grid_index=index))
    assert tool.total_launches == len(names)
    assert sum(tool.frequencies().values()) == len(names)
    assert tool.distinct_kernels == len(set(names))
