"""Tests for streams/events and the trace-buffer accounting."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.gpusim.device import A100, GpuDevice
from repro.gpusim.stream import DEFAULT_STREAM_ID, StreamManager
from repro.gpusim.trace import (
    AccessCountMap,
    AnalysisModel,
    TraceBuffer,
    TRACE_RECORD_BYTES,
)


@pytest.fixture
def streams() -> StreamManager:
    return StreamManager(GpuDevice(spec=A100))


class TestStreams:
    def test_default_stream_exists(self, streams):
        assert streams.get_stream().stream_id == DEFAULT_STREAM_ID

    def test_work_in_one_stream_is_ordered(self, streams):
        stream = streams.get_stream()
        s1, e1 = stream.enqueue(0, 100)
        s2, e2 = stream.enqueue(0, 50)
        assert s2 == e1
        assert e2 == e1 + 50

    def test_negative_duration_rejected(self, streams):
        with pytest.raises(StreamError):
            streams.get_stream().enqueue(0, -1)

    def test_create_and_destroy_stream(self, streams):
        stream = streams.create_stream()
        assert stream.stream_id != DEFAULT_STREAM_ID
        streams.destroy_stream(stream.stream_id)
        with pytest.raises(StreamError):
            streams.get_stream(stream.stream_id)

    def test_default_stream_cannot_be_destroyed(self, streams):
        with pytest.raises(StreamError):
            streams.destroy_stream(DEFAULT_STREAM_ID)

    def test_stream_synchronize_advances_clock(self, streams):
        stream = streams.get_stream()
        stream.enqueue(0, 5_000)
        now = streams.synchronize_stream()
        assert now >= 5_000
        assert streams.device.now() == now

    def test_device_synchronize_waits_for_all_streams(self, streams):
        other = streams.create_stream()
        streams.get_stream().enqueue(0, 1_000)
        other.enqueue(0, 9_000)
        now = streams.synchronize_device()
        assert now >= 9_000

    def test_events_measure_elapsed_time(self, streams):
        start = streams.create_event()
        end = streams.create_event()
        streams.record_event(start)
        streams.get_stream().enqueue(streams.device.now(), 7_000)
        streams.record_event(end)
        assert streams.elapsed_ns(start, end) == 7_000

    def test_unrecorded_event_elapsed_raises(self, streams):
        start = streams.create_event()
        end = streams.create_event()
        with pytest.raises(StreamError):
            streams.elapsed_ns(start, end)


class TestTraceBuffer:
    def test_cpu_side_model_flushes_when_full(self):
        buffer = TraceBuffer(capacity_bytes=10 * TRACE_RECORD_BYTES)
        stats = buffer.collect(total_records=35, model=AnalysisModel.CPU_SIDE)
        assert stats.flush_rounds == 4
        assert stats.transferred_bytes == 35 * TRACE_RECORD_BYTES

    def test_gpu_resident_model_never_flushes(self):
        buffer = TraceBuffer(capacity_bytes=10 * TRACE_RECORD_BYTES)
        stats = buffer.collect(total_records=1_000_000, model=AnalysisModel.GPU_RESIDENT)
        assert stats.flush_rounds == 0
        # Only the reduced result map crosses PCIe.
        assert stats.transferred_bytes <= 64 * 1024

    def test_zero_records(self):
        stats = TraceBuffer().collect(0, AnalysisModel.CPU_SIDE)
        assert stats.flush_rounds == 0
        assert stats.transferred_bytes == 0

    def test_small_trace_transfers_less_than_result_map(self):
        stats = TraceBuffer().collect(10, AnalysisModel.GPU_RESIDENT)
        assert stats.transferred_bytes == 10 * TRACE_RECORD_BYTES


class TestAccessCountMap:
    def test_record_and_query(self):
        amap = AccessCountMap()
        amap.record(1, 10)
        amap.record(1, 5)
        amap.record(2)
        assert amap.counts[1] == 15
        assert amap.total_accesses() == 16
        assert set(amap.accessed_object_ids()) == {1, 2}

    def test_merge(self):
        a, b = AccessCountMap(), AccessCountMap()
        a.record(1, 3)
        b.record(1, 4)
        b.record(2, 1)
        a.merge(b)
        assert a.counts == {1: 7, 2: 1}
