"""Tests for the ``pasta trace`` subcommand of the umbrella CLI."""

from __future__ import annotations

import json

import pytest

from repro.commands import main as _umbrella_main


def main(argv):
    return _umbrella_main(["trace", *argv])


@pytest.fixture
def recorded_trace(tmp_path):
    """A small recorded workload trace."""
    path = tmp_path / "alexnet.pastatrace"
    assert main(["record", "alexnet", "-o", str(path),
                 "--device", "a100", "--batch-size", "2"]) == 0
    return path


class TestRecord:
    def test_record_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "t.pastatrace"
        assert main(["record", "alexnet", "-o", str(path), "--batch-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and str(path) in out
        assert path.exists()

    def test_record_json_summary(self, tmp_path, capsys):
        path = tmp_path / "t.pastatrace"
        assert main(["record", "alexnet", "-o", str(path), "--batch-size", "2",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["events"] > 0
        assert data["run"]["model"] == "alexnet"

    def test_record_rejects_unknown_model(self, capsys):
        # Free-form argument (plugin models must be accepted), validated
        # against the model registry at execution time.
        assert main(["record", "not-a-model", "-o", "x.pastatrace"]) == 1
        assert "not-a-model" in capsys.readouterr().err


class TestReplay:
    def test_replay_text_reports(self, recorded_trace, capsys):
        assert main(["replay", str(recorded_trace), "--tool", "kernel_frequency"]) == 0
        out = capsys.readouterr().out
        assert "[kernel_frequency]" in out
        assert "[overhead]" in out
        assert "replayed" in out

    def test_replay_json_and_analysis_model_override(self, recorded_trace, capsys):
        assert main(["replay", str(recorded_trace), "-t", "kernel_frequency",
                     "--json"]) == 0
        gpu = json.loads(capsys.readouterr().out)
        assert main(["replay", str(recorded_trace), "-t", "kernel_frequency",
                     "--analysis-model", "cpu_side", "--json"]) == 0
        cpu = json.loads(capsys.readouterr().out)
        assert gpu["kernel_frequency"] == cpu["kernel_frequency"]
        assert cpu["overhead"]["normalized_overhead"] > gpu["overhead"]["normalized_overhead"]

    def test_replay_grid_window(self, recorded_trace, capsys):
        assert main(["replay", str(recorded_trace), "-t", "kernel_frequency",
                     "--start-grid-id", "0", "--end-grid-id", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] == 3

    def test_replay_list_tools_needs_no_trace(self, capsys):
        assert main(["replay", "--list-tools"]) == 0
        assert "kernel_frequency" in capsys.readouterr().out

    def test_replay_without_trace_errors(self, capsys):
        assert main(["replay", "-t", "kernel_frequency"]) == 1
        assert "trace path is required" in capsys.readouterr().err

    def test_replay_missing_trace_errors(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "none.pastatrace"),
                     "-t", "kernel_frequency"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSchemaEscapeHatch:
    def test_no_strict_schema_reads_older_traces(self, recorded_trace, capsys):
        """A trace whose header carries stale fingerprints (e.g. recorded by
        an older event model) is unreadable by default but opens with
        --no-strict-schema on every subcommand."""
        from repro.replay import TraceReader, TraceWriter

        reader = TraceReader(recorded_trace)
        header = reader.header
        header.schemas = {tag: "f" * 16 for tag in header.schemas}
        stale = recorded_trace.parent / "stale.pastatrace"
        with TraceWriter(stale, header) as writer:
            for event in reader.events():
                writer.write(event)

        assert main(["info", str(stale)]) == 1
        assert "error" in capsys.readouterr().err
        assert main(["info", str(stale), "--no-strict-schema"]) == 0
        capsys.readouterr()
        assert main(["replay", str(stale), "--tool", "kernel_frequency",
                     "--no-strict-schema"]) == 0
        capsys.readouterr()
        out = recorded_trace.parent / "sliced.pastatrace"
        assert main(["slice", str(stale), "-o", str(out),
                     "--category", "kernel_launch", "--no-strict-schema"]) == 0


class TestInfoAndSlice:
    def test_info_text(self, recorded_trace, capsys):
        assert main(["info", str(recorded_trace)]) == 0
        out = capsys.readouterr().out
        assert "digest:       ok" in out
        assert "kernel_launch" in out

    def test_info_json(self, recorded_trace, capsys):
        assert main(["info", str(recorded_trace), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["digest_ok"] is True
        assert data["footer"]["event_count"] > 0
        assert data["header"]["workload"]["model"] == "alexnet"

    def test_slice_by_category_then_info(self, recorded_trace, tmp_path, capsys):
        out_path = tmp_path / "launches.pastatrace"
        assert main(["slice", str(recorded_trace), "-o", str(out_path),
                     "--category", "kernel_launch"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["info", str(out_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data["footer"]["category_counts"]) == {"kernel_launch"}

    def test_slice_window_replays(self, recorded_trace, tmp_path, capsys):
        out_path = tmp_path / "window.pastatrace"
        assert main(["slice", str(recorded_trace), "-o", str(out_path),
                     "--start-grid-id", "0", "--end-grid-id", "1"]) == 0
        capsys.readouterr()
        assert main(["replay", str(out_path), "-t", "kernel_frequency", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] == 2

    def test_slice_unknown_category_errors(self, recorded_trace, tmp_path, capsys):
        assert main(["slice", str(recorded_trace), "-o", str(tmp_path / "x"),
                     "--category", "bogus"]) == 1
        assert "unknown event category" in capsys.readouterr().err
