"""Tests for the unified profiling API (`repro.api`) and its compat shims.

The acceptance criterion of the API redesign: a single
:class:`~repro.api.spec.ProfileSpec` value drives all four execution paths —
live run, record-to-trace, offline replay, and a one-job campaign — and the
resulting tool reports are byte-identical across them; the spec round-trips
through JSON and its canonical serialization is the sole input to the
campaign cache digest.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

import repro
from repro import ProfileSpec, pasta, profile, run
from repro import api
from repro.campaign import CampaignScheduler, ResultCache
from repro.core.serialization import content_digest, stable_json_dumps
from repro.errors import ReproError
from repro.tools import KernelFrequencyTool

#: Tools whose reports are pure functions of the event stream (no global
#: per-process counters such as device indices), so two separate simulations
#: of the same spec produce identical reports.
DETERMINISTIC_TOOLS = ("kernel_frequency", "memory_characteristics")


def canonical_bytes(reports) -> bytes:
    """Reports normalised to their canonical JSON byte representation."""
    return stable_json_dumps(reports).encode("utf-8")


# ---------------------------------------------------------------------- #
# ProfileSpec: round-trip, validation, identity
# ---------------------------------------------------------------------- #
class TestProfileSpec:
    def test_json_round_trip(self):
        spec = ProfileSpec(
            model="gpt2", device="rtx3060", mode="train",
            tools=("hotness", "access_histogram"), iterations=2, batch_size=4,
            backend="nvbit", analysis_model="cpu_side", fine_grained=True,
            knobs={"start_grid_id": 0, "end_grid_id": 49},  # type: ignore[arg-type]
            record_to="trace.pasta",
        )
        assert ProfileSpec.from_json(spec.to_json()) == spec
        assert ProfileSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(spec.to_json()) == spec.to_dict()

    def test_knobs_normalise_to_sorted_pairs(self):
        a = ProfileSpec(model="alexnet", knobs={"b": 1, "a": 2})  # type: ignore[arg-type]
        b = ProfileSpec(model="alexnet", knobs={"a": 2, "b": 1})  # type: ignore[arg-type]
        assert a == b and hash(a) == hash(b)
        assert a.knobs == (("a", 2), ("b", 1))

    def test_validation(self):
        with pytest.raises(ReproError, match="non-empty"):
            ProfileSpec(model="")
        with pytest.raises(ReproError, match="did you mean 'train'"):
            ProfileSpec(model="alexnet", mode="training")
        with pytest.raises(ReproError, match="iterations"):
            ProfileSpec(model="alexnet", iterations=0)
        with pytest.raises(ReproError, match="unknown ProfileSpec fields"):
            ProfileSpec.from_dict({"model": "alexnet", "colour": "red"})

    def test_canonical_excludes_only_the_trace_destination(self):
        spec = ProfileSpec(model="alexnet", record_to="t.pasta")
        assert "record_to" in spec.to_dict()
        assert "record_to" not in spec.canonical()
        assert set(spec.to_dict()) - set(spec.canonical()) == {"record_to"}

    def test_digest_is_content_digest_of_canonical_serialization(self):
        spec = ProfileSpec(model="alexnet", tools=("kernel_frequency",))
        assert spec.digest("1.2.0") == content_digest(spec.canonical(), "1.2.0")

    def test_digest_ignores_record_to_but_not_version(self):
        spec = ProfileSpec(model="alexnet")
        assert spec.digest("v1") == spec.with_record("anywhere.pasta").digest("v1")
        assert spec.digest("v1") != spec.digest("v2")
        assert spec.digest("v1") != ProfileSpec(model="resnet18").digest("v1")

    def test_workload_signature_ignores_analysis_only_fields(self):
        base = ProfileSpec(model="alexnet", batch_size=2)
        assert (base.replace(tools=("kernel_frequency",)).workload_signature()
                == base.replace(analysis_model="cpu_side",
                                knobs={"start_grid_id": 0}).workload_signature())  # type: ignore[arg-type]
        assert base.workload_signature() != base.replace(device="rtx3060").workload_signature()


# ---------------------------------------------------------------------- #
# fluent builder
# ---------------------------------------------------------------------- #
class TestProfileBuilder:
    def test_fluent_chain_builds_the_expected_spec(self):
        spec = (profile("gpt2")
                .on("a100")
                .mode("train")
                .with_tools("hotness", "access_histogram")
                .iterations(2)
                .batch_size(4)
                .backend("nvbit")
                .analysis_model("cpu_side")
                .fine_grained()
                .window(0, 49)
                .record("trace.pasta")
                .build())
        assert spec == ProfileSpec(
            model="gpt2", device="a100", mode="train",
            tools=("hotness", "access_histogram"), iterations=2, batch_size=4,
            backend="nvbit", analysis_model="cpu_side", fine_grained=True,
            knobs={"start_grid_id": 0, "end_grid_id": 49},  # type: ignore[arg-type]
            record_to="trace.pasta",
        )

    def test_builder_is_importable_from_the_pasta_facade(self):
        spec = pasta.profile("alexnet").on("rtx3060").build()
        assert spec.device == "rtx3060"

    def test_builder_run_executes(self):
        result = (profile("alexnet").on("rtx3060")
                  .with_tools("kernel_frequency").batch_size(2).run())
        assert result.report("kernel_frequency")["total_launches"] > 0
        assert result.spec.device == "rtx3060"

    def test_builder_accepts_tool_instances_at_run_time(self):
        tool = KernelFrequencyTool()
        result = profile("alexnet").with_tools(tool).batch_size(2).run()
        assert result.tool("kernel_frequency") is tool

    def test_builder_with_instances_refuses_to_build_a_spec(self):
        builder = profile("alexnet").with_tools(KernelFrequencyTool())
        with pytest.raises(ReproError, match="registry names"):
            builder.build()

    def test_builder_replay_reuses_the_configuration(self, tmp_path):
        trace = tmp_path / "b.pastatrace"
        live = (profile("alexnet").with_tools("kernel_frequency")
                .batch_size(2).record(trace).run())
        replayed = (profile("alexnet").with_tools("kernel_frequency")
                    .batch_size(2).replay(trace))
        assert canonical_bytes(replayed.reports()) == canonical_bytes(live.reports())


# ---------------------------------------------------------------------- #
# acceptance: one spec, four execution paths, byte-identical reports
# ---------------------------------------------------------------------- #
class TestOneSpecFourPaths:
    @pytest.fixture(scope="class")
    def spec(self):
        return ProfileSpec(
            model="alexnet", device="a100", mode="inference",
            tools=DETERMINISTIC_TOOLS, batch_size=2,
        )

    def test_reports_byte_identical_across_all_paths(self, spec, tmp_path):
        trace = tmp_path / "spec.pastatrace"

        # 1. live run
        live = api.execute(spec)
        # 2. record-to-trace (same spec, plus a destination)
        recorded = api.execute(spec.with_record(trace))
        # 3. offline replay of the recorded trace, configured by the spec
        replayed = api.replay(trace, spec)
        # 4a. one-job campaign, simulate mode
        cache = ResultCache(tmp_path / "cache")
        campaign = CampaignScheduler(cache=cache).run([spec], name="api-accept")
        assert campaign.failed == 0 and campaign.total == 1
        # 4b. one-job campaign, replay mode (records its own trace once)
        campaign_replay = CampaignScheduler(execution="replay").run(
            [spec], name="api-accept-replay")
        assert campaign_replay.failed == 0

        reference = canonical_bytes(live.reports())
        assert canonical_bytes(recorded.reports()) == reference
        assert canonical_bytes(replayed.reports()) == reference
        assert canonical_bytes(campaign.records()[0]["reports"]) == reference
        assert canonical_bytes(campaign_replay.records()[0]["reports"]) == reference

    def test_campaign_cache_is_keyed_by_the_spec_digest(self, spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scheduler = CampaignScheduler(cache=cache)
        first = scheduler.run([spec], name="digest-check")
        expected = spec.digest(repro.__version__)
        assert first.outcomes[0].digest == expected
        assert cache.contains(expected)
        # identical spec: served from the cache, nothing re-simulated
        second = scheduler.run([spec], name="digest-check")
        assert second.cached == 1 and second.executed == 0

    def test_record_to_shares_the_digest_but_never_skips_the_trace(
            self, spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scheduler = CampaignScheduler(cache=cache)
        assert scheduler.run([spec], name="warm").executed == 1
        # Same digest, but the job asks for a trace artifact: the scheduler
        # must execute it (producing the file) rather than answer from cache.
        trace = tmp_path / "job.pastatrace"
        recording = spec.with_record(trace)
        assert recording.digest(repro.__version__) == spec.digest(repro.__version__)
        result = scheduler.run([recording], name="warm")
        assert result.executed == 1 and result.cached == 0
        assert trace.exists()

    def test_replay_mode_campaign_still_writes_requested_traces(self, spec, tmp_path):
        # Replay-mode answers jobs from a shared workload trace, but a job
        # that asks for its own trace artifact must be simulated so the
        # file actually exists — with reports identical to its replayed twin.
        trace = tmp_path / "replay-job.pastatrace"
        plain, recording = spec, spec.with_record(trace)
        result = CampaignScheduler(execution="replay").run(
            [plain, recording], name="replay-record")
        assert result.failed == 0 and result.executed == 2
        assert trace.exists()
        records = result.records()
        assert canonical_bytes(records[0]["reports"]) == canonical_bytes(records[1]["reports"])

    def test_payload_round_trips_through_json_for_worker_pools(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ProfileSpec.from_dict(payload) == spec
        record = api.execute_payload(payload)
        assert record["status"] == "ok"
        assert set(record["reports"]) == set(DETERMINISTIC_TOOLS) | {"overhead"}


# ---------------------------------------------------------------------- #
# public surface
# ---------------------------------------------------------------------- #
class TestPublicSurface:
    REQUIRED_EXPORTS = (
        "ProfileSpec", "profile", "run", "replay",
        "create_tool", "registered_tools", "PastaError",
    )

    def test_required_names_are_exported(self):
        for name in self.REQUIRED_EXPORTS:
            assert name in repro.__all__, name

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_readme_and_examples_import_only_the_public_surface(self):
        root = Path(__file__).resolve().parent.parent
        sources = [root / "README.md"]
        sources += sorted((root / "examples").glob("*.py"))
        pattern = re.compile(
            r"^\s*from repro import ([A-Za-z0-9_,\s]+?)\s*$", re.MULTILINE
        )
        seen = set()
        for source in sources:
            for match in pattern.finditer(source.read_text()):
                for name in match.group(1).split(","):
                    name = name.strip()
                    if name:
                        seen.add(name)
        assert seen, "expected README/examples to import from repro"
        missing = seen - set(repro.__all__)
        assert not missing, f"README/examples import non-public names: {sorted(missing)}"

    def test_facade_module_reexports_the_api(self):
        assert pasta.ProfileSpec is ProfileSpec
        assert pasta.profile is profile
        assert pasta.run is run


# ---------------------------------------------------------------------- #
# backward-compat shims: warn, then behave identically
# ---------------------------------------------------------------------- #
class TestDeprecatedShims:
    def test_run_workload_warns_and_matches_the_new_api(self):
        from repro.workloads.runner import run_workload

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            old = run_workload("alexnet", device="a100",
                               tools=["kernel_frequency"], batch_size=2)
        new = api.run("alexnet", device="a100",
                      tools=["kernel_frequency"], batch_size=2)
        assert canonical_bytes(old.reports()) == canonical_bytes(new.reports())

    def test_run_workload_legacy_parameter_names_still_work(self, tmp_path):
        from repro.workloads.runner import run_workload

        trace = tmp_path / "legacy.pastatrace"
        with pytest.warns(DeprecationWarning):
            result = run_workload("alexnet", vendor_backend="nvbit",
                                  enable_fine_grained=True, batch_size=2,
                                  record_to=trace)
        assert result.session.backend.name == "nvbit"
        assert trace.exists()

    def test_job_payload_helpers_warn_and_delegate(self, tmp_path):
        from repro.workloads.runner import (
            execute_job_payload,
            job_workload_signature,
        )

        payload = {"model": "alexnet", "batch_size": 2,
                   "tools": ["kernel_frequency"]}
        with pytest.warns(DeprecationWarning, match="execute_payload"):
            old = execute_job_payload(payload)
        assert old["reports"] == api.execute_payload(payload)["reports"]
        with pytest.warns(DeprecationWarning, match="workload_signature"):
            signature = job_workload_signature(payload)
        assert signature == api.workload_signature(payload)

    def test_jobspec_alias_warns_and_is_profilespec(self):
        import repro.campaign.spec as campaign_spec

        with pytest.warns(DeprecationWarning, match="ProfileSpec"):
            alias = campaign_spec.JobSpec
        assert alias is ProfileSpec
        with pytest.warns(DeprecationWarning):
            from repro.campaign import JobSpec as packaged_alias
        assert packaged_alias is ProfileSpec

    def test_pasta_profile_shim_warns_and_matches_umbrella_output(self, capsys):
        import repro.cli
        from repro.commands import main as pasta_main

        argv = ["alexnet", "-t", "kernel_frequency", "--batch-size", "2", "--json"]
        with pytest.warns(DeprecationWarning, match="pasta profile"):
            assert repro.cli.main(argv) == 0
        old_out = capsys.readouterr().out
        assert pasta_main(["profile", *argv]) == 0
        assert capsys.readouterr().out == old_out

    def test_pasta_campaign_shim_warns_and_matches_umbrella_output(
            self, tmp_path, capsys):
        import repro.campaign.cli
        from repro.commands import main as pasta_main

        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({
            "name": "shim", "models": ["alexnet"],
            "tools": ["kernel_frequency"], "batch_size": 2,
        }))
        argv = ["run", str(spec_path), "--dry-run"]
        with pytest.warns(DeprecationWarning, match="pasta campaign"):
            assert repro.campaign.cli.main(argv) == 0
        old_out = capsys.readouterr().out
        assert pasta_main(["campaign", *argv]) == 0
        assert capsys.readouterr().out == old_out

    def test_pasta_trace_shim_warns_and_matches_umbrella_output(
            self, tmp_path, capsys):
        import repro.replay.cli
        from repro.commands import main as pasta_main

        trace = tmp_path / "t.pastatrace"
        assert pasta_main(["trace", "record", "alexnet", "-o", str(trace),
                           "--batch-size", "2"]) == 0
        capsys.readouterr()
        argv = ["replay", str(trace), "-t", "kernel_frequency", "--json"]
        with pytest.warns(DeprecationWarning, match="pasta trace"):
            assert repro.replay.cli.main(argv) == 0
        old_out = capsys.readouterr().out
        assert pasta_main(["trace", *argv]) == 0
        assert capsys.readouterr().out == old_out

    def test_campaign_spec_json_files_keep_working(self, tmp_path):
        # Old-style campaign JSON (including extra_jobs in the historical
        # JobSpec shape, without record_to) loads and runs unchanged.
        from repro.campaign import CampaignSpec

        spec = CampaignSpec.from_dict({
            "name": "legacy",
            "models": ["alexnet"],
            "tools": ["kernel_frequency"],
            "batch_size": 2,
            "extra_jobs": [{"model": "alexnet", "tools": ["memory_characteristics"],
                            "batch_size": 2}],
        })
        jobs = spec.expand()
        assert all(isinstance(job, ProfileSpec) for job in jobs)
        assert len(jobs) == 2
        result = CampaignScheduler().run(spec)
        assert result.failed == 0 and result.total == 2
