"""Tests for tensors and the caching (pool) allocator."""

from __future__ import annotations

import pytest

from repro.errors import AllocatorError, ShapeError
from repro.dlframework.allocator import (
    CachingAllocator,
    CUDA_ALLOCATOR_PROFILE,
    HIP_ALLOCATOR_PROFILE,
    MemoryUsageRecord,
    round_size,
)
from repro.dlframework.tensor import DType, Tensor, check_matmul_shapes
from repro.gpusim.device import A100, MiB
from repro.gpusim.runtime import create_runtime


@pytest.fixture
def allocator(a100_runtime) -> CachingAllocator:
    return CachingAllocator(a100_runtime)


class TestTensor:
    def test_numel_and_nbytes(self):
        t = Tensor(shape=(2, 3, 4), dtype=DType.FLOAT32)
        assert t.numel == 24
        assert t.nbytes == 96

    def test_dtype_itemsizes(self):
        assert Tensor(shape=(8,), dtype=DType.FLOAT16).nbytes == 16
        assert Tensor(shape=(8,), dtype=DType.INT64).nbytes == 64
        assert Tensor(shape=(8,), dtype=DType.BOOL).nbytes == 8

    def test_scalar_tensor(self):
        t = Tensor(shape=())
        assert t.numel == 1

    def test_negative_shape_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(shape=(2, -1))

    def test_size_accessor(self):
        t = Tensor(shape=(4, 5))
        assert t.size() == (4, 5)
        assert t.size(1) == 5

    def test_matmul_shape_checking(self):
        assert check_matmul_shapes((2, 3), (3, 4)) == (2, 4)
        assert check_matmul_shapes((8, 2, 3), (8, 3, 4)) == (8, 2, 4)
        with pytest.raises(ShapeError):
            check_matmul_shapes((2, 3), (4, 5))
        with pytest.raises(ShapeError):
            check_matmul_shapes((2, 2, 3), (3, 3, 4))
        with pytest.raises(ShapeError):
            check_matmul_shapes((3,), (3,))


class TestRounding:
    def test_round_size(self):
        assert round_size(1) == 512
        assert round_size(512) == 512
        assert round_size(513) == 1024

    def test_round_size_non_positive(self):
        assert round_size(0) == 512


class TestCachingAllocator:
    def test_allocation_assigns_address_inside_a_segment(self, allocator):
        t = allocator.allocate_tensor((1024,), name="x")
        assert t.address != 0
        segment = allocator.segment_for_address(t.address)
        assert segment is not None
        assert t.segment_object_id == segment.memory_object.object_id

    def test_small_and_large_pools(self, allocator):
        small = allocator.allocate_tensor((1024,))
        large = allocator.allocate_tensor((8 * MiB // 4,))
        small_seg = allocator.segment_for_address(small.address)
        large_seg = allocator.segment_for_address(large.address)
        assert small_seg.pool == "small"
        assert large_seg.pool == "large"

    def test_multiple_tensors_share_one_segment(self, allocator):
        tensors = [allocator.allocate_tensor((256,)) for _ in range(10)]
        segments = {t.segment_object_id for t in tensors}
        assert len(segments) == 1
        # This is the object/tensor granularity mismatch of Section V-C1.

    def test_free_and_reuse_cached_block(self, allocator):
        t1 = allocator.allocate_tensor((4096,))
        address = t1.address
        allocator.free_tensor(t1)
        t2 = allocator.allocate_tensor((4096,))
        assert t2.address == address
        assert allocator.stats.cache_hits >= 1

    def test_freed_blocks_do_not_hit_the_driver(self, allocator):
        runtime_allocs_before = allocator.runtime.allocator.alloc_count
        t = allocator.allocate_tensor((4096,))
        allocator.free_tensor(t)
        allocator.allocate_tensor((4096,))
        # One segment allocation at most; the free/realloc cycle is pool-internal.
        assert allocator.runtime.allocator.alloc_count <= runtime_allocs_before + 1

    def test_double_free_raises(self, allocator):
        t = allocator.allocate_tensor((4096,))
        allocator.free_tensor(t)
        with pytest.raises(AllocatorError):
            allocator.free_tensor(t)

    def test_free_unallocated_tensor_raises(self, allocator):
        with pytest.raises(AllocatorError):
            allocator.free_tensor(Tensor(shape=(4,)))

    def test_stats_track_allocated_and_peak(self, allocator):
        t1 = allocator.allocate_tensor((MiB,), dtype=DType.INT8)
        t2 = allocator.allocate_tensor((MiB,), dtype=DType.INT8)
        peak = allocator.stats.peak_allocated_bytes
        allocator.free_tensor(t1)
        assert allocator.stats.allocated_bytes < peak
        assert allocator.stats.peak_allocated_bytes == peak
        allocator.free_tensor(t2)
        assert allocator.stats.allocated_bytes == 0

    def test_coalescing_allows_larger_reuse(self, allocator):
        a = allocator.allocate_tensor((100_000,), dtype=DType.INT8)
        b = allocator.allocate_tensor((100_000,), dtype=DType.INT8)
        segments_before = allocator.stats.segment_count
        allocator.free_tensor(a)
        allocator.free_tensor(b)
        # After coalescing, a request the size of both fits without a new segment.
        allocator.allocate_tensor((200_000,), dtype=DType.INT8)
        assert allocator.stats.segment_count == segments_before

    def test_empty_cache_returns_free_segments_to_driver(self, allocator):
        t = allocator.allocate_tensor((4 * MiB,), dtype=DType.INT8)
        allocator.free_tensor(t)
        released = allocator.empty_cache()
        assert released > 0
        assert allocator.reserved_bytes() == 0

    def test_empty_cache_keeps_segments_with_live_blocks(self, allocator):
        keep = allocator.allocate_tensor((4096,))
        tmp = allocator.allocate_tensor((4096,))
        allocator.free_tensor(tmp)
        allocator.empty_cache()
        assert allocator.segment_for_address(keep.address) is not None


class TestMemoryUsageCallbacks:
    def test_callbacks_report_signed_deltas(self, allocator):
        records: list[MemoryUsageRecord] = []
        allocator.register_callback(records.append)
        t = allocator.allocate_tensor((4096,), name="activation")
        allocator.free_tensor(t)
        assert len(records) == 2
        assert records[0].delta_bytes > 0
        assert records[1].delta_bytes < 0
        assert records[0].tensor_name == "activation"
        assert records[1].allocated_bytes == 0

    def test_event_index_is_monotonic(self, allocator):
        records: list[MemoryUsageRecord] = []
        allocator.register_callback(records.append)
        for _ in range(5):
            t = allocator.allocate_tensor((1024,))
            allocator.free_tensor(t)
        indices = [r.event_index for r in records]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_unregister_callback(self, allocator):
        records = []
        allocator.register_callback(records.append)
        allocator.unregister_callback(records.append)
        allocator.allocate_tensor((1024,))
        assert records == []

    def test_usage_timeline_matches_event_count(self, allocator):
        for _ in range(3):
            allocator.allocate_tensor((1024,))
        assert len(allocator.usage_timeline) == allocator.event_count == 3


class TestBackendProfiles:
    def test_hip_profile_uses_smaller_large_segments(self):
        assert HIP_ALLOCATOR_PROFILE.large_segment_bytes < CUDA_ALLOCATOR_PROFILE.large_segment_bytes

    def test_hip_allocator_creates_more_segments_for_same_workload(self):
        cuda_alloc = CachingAllocator(create_runtime(A100), CUDA_ALLOCATOR_PROFILE)
        hip_alloc = CachingAllocator(create_runtime(A100), HIP_ALLOCATOR_PROFILE)
        for allocator in (cuda_alloc, hip_alloc):
            for _ in range(12):
                allocator.allocate_tensor((2 * MiB,), dtype=DType.INT8)
        assert hip_alloc.stats.segment_count >= cuda_alloc.stats.segment_count

    def test_managed_memory_mode_registers_segments_with_uvm(self):
        runtime = create_runtime(A100, enable_uvm=True)
        allocator = CachingAllocator(runtime, use_managed_memory=True)
        t = allocator.allocate_tensor((4 * MiB,), dtype=DType.INT8)
        assert runtime.uvm is not None
        assert runtime.uvm.is_managed_address(t.address)
