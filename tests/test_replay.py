"""Tests for the trace record & replay subsystem (repro.replay)."""

from __future__ import annotations

import gzip
import json

import pytest
from hypothesis import given, settings, strategies as st

import repro
import repro.api.runner as api_runner
from repro import api
from repro.campaign import CampaignScheduler, CampaignSpec
from repro.core.events import (
    EventCategory,
    InstructionBatch,
    InstructionEvent,
    KernelArgumentInfo,
    KernelLaunchEvent,
    KernelMemoryProfile,
    MemcpyEvent,
    MemoryAccessBatch,
    MemoryAccessEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemsetEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    PastaEvent,
    RegionEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)
from repro.core.serialization import json_roundtrip, json_sanitize
from repro.core.session import PastaSession, collect_reports
from repro.errors import PastaError, TraceError, TraceFormatError, TraceSchemaError
from repro.gpusim.instruction import InstructionKind
from repro.replay import (
    TRACE_FORMAT_VERSION,
    TraceHeader,
    TraceReader,
    TraceWriter,
    current_schemas,
    decode_event,
    encode_event,
    index_path_for,
    replay_trace,
)
from repro.replay.replayer import TraceAddressResolver
from repro.tools import (
    KernelFrequencyTool,
    MemoryCharacteristicsTool,
    MemoryTimelineTool,
    TimeSeriesHotnessTool,
)
from repro.api import (
    record_workload_trace,
    replay_payload,
    workload_signature,
)

ALL_EVENT_CLASSES = [
    PastaEvent,
    RuntimeApiEvent,
    KernelLaunchEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    MemcpyEvent,
    MemsetEvent,
    SynchronizationEvent,
    MemoryAccessEvent,
    InstructionEvent,
    MemoryAccessBatch,
    InstructionBatch,
    KernelMemoryProfile,
    OperatorStartEvent,
    OperatorEndEvent,
    TensorAllocEvent,
    TensorFreeEvent,
    RegionEvent,
]


def events_equal(a, b) -> bool:
    """Field-level equality through the codec (events compare by identity)."""
    return type(a) is type(b) and encode_event(a) == encode_event(b)


def event_lists_equal(xs, ys) -> bool:
    xs, ys = list(xs), list(ys)
    return len(xs) == len(ys) and all(events_equal(x, y) for x, y in zip(xs, ys))


def fine_grained_event_count(category_counts) -> int:
    """Logical fine-grained event total, whichever shape the trace used."""
    return sum(
        category_counts.get(key, 0)
        for key in ("memory_access", "instruction",
                    "memory_access_batch", "instruction_batch")
    )


def sample_events() -> list[PastaEvent]:
    """One representative, fully-populated instance of every event class."""
    return [
        PastaEvent(category=EventCategory.RUNTIME_API, device_index=1,
                   timestamp_ns=10, source="nvbit"),
        RuntimeApiEvent(api_name="cudaMalloc", device_index=0, timestamp_ns=11),
        KernelLaunchEvent(
            kernel_name="gemm", launch_id=7, grid=(4, 2, 1), block=(128, 1, 1),
            stream_id=3, duration_ns=5000, memory_footprint_bytes=1 << 20,
            working_set_bytes=1 << 18, total_memory_accesses=4096,
            op_context="linear", grid_index=6,
            arguments=(
                KernelArgumentInfo(address=0x1000, size=512, referenced_bytes=256,
                                   access_count=64, label="weight"),
                KernelArgumentInfo(address=0x4000, size=1024, referenced_bytes=512,
                                   access_count=16),
            ),
            source="compute_sanitizer", timestamp_ns=12,
        ),
        MemoryAllocEvent(address=0x1000, size=4096, object_id=5,
                         memory_kind="device", tag="weights", timestamp_ns=13),
        MemoryFreeEvent(address=0x1000, size=4096, object_id=5, timestamp_ns=14),
        MemcpyEvent(size=2048, direction="device_to_host", duration_ns=900,
                    stream_id=2, timestamp_ns=15),
        MemsetEvent(address=0x2000, size=128, value=7, timestamp_ns=16),
        SynchronizationEvent(scope="stream", stream_id=4, timestamp_ns=17),
        SynchronizationEvent(scope="device", stream_id=None, timestamp_ns=18),
        MemoryAccessEvent(address=0x1040, size=8, is_write=True, kernel_launch_id=7,
                          thread_index=33, block_index=2, timestamp_ns=19),
        InstructionEvent(kind=InstructionKind.BARRIER, kernel_launch_id=7,
                         thread_index=12, block_index=1, timestamp_ns=20),
        MemoryAccessBatch(
            kernel_launch_id=7,
            addresses=(0x1040, 0x1080, 0x4000), sizes=(4, 4, 8),
            write_flags=(False, True, False), thread_indices=(0, 1, 2),
            block_indices=(0, 0, 1), source="compute_sanitizer", timestamp_ns=20,
        ),
        InstructionBatch(
            kernel_launch_id=7,
            kinds=(InstructionKind.BLOCK_ENTRY, InstructionKind.BARRIER,
                   InstructionKind.BLOCK_EXIT),
            thread_indices=(0, 12, 0), block_indices=(0, 1, 0),
            source="compute_sanitizer", timestamp_ns=20,
        ),
        KernelMemoryProfile(
            kernel_name="gemm", launch_id=7, op_context="linear",
            object_access_counts={5: 64, 9: 16},
            object_referenced_bytes={5: 256, 9: 512},
            footprint_bytes=1 << 20, working_set_bytes=1 << 18,
            total_accesses=80, timestamp_ns=21,
        ),
        OperatorStartEvent(op_id=3, name="linear", scope="layer1", sequence=8,
                           python_stack=("model.py:10", "ops.py:40"), timestamp_ns=22),
        OperatorEndEvent(op_id=3, name="linear", scope="layer1", sequence=8,
                         kernel_count=2, timestamp_ns=23),
        TensorAllocEvent(tensor_id=77, tensor_name="act", address=0x8000, nbytes=2048,
                         pool_allocated_bytes=1 << 22, pool_reserved_bytes=1 << 23,
                         event_index=41, timestamp_ns=24),
        TensorFreeEvent(tensor_id=77, tensor_name="act", address=0x8000, nbytes=2048,
                        pool_allocated_bytes=1 << 21, pool_reserved_bytes=1 << 23,
                        event_index=42, timestamp_ns=25),
        RegionEvent(label="layer", starting=True, source="annotation", timestamp_ns=26),
        RegionEvent(label="layer", starting=False, source="annotation", timestamp_ns=27),
    ]


DEFAULT_TOOLSET = lambda: [  # noqa: E731 - fresh instances per call
    KernelFrequencyTool(),
    MemoryCharacteristicsTool(),
    MemoryTimelineTool(),
    TimeSeriesHotnessTool(),
]


def make_header(**overrides) -> TraceHeader:
    from repro.gpusim.device import A100

    defaults = dict(
        device_spec=A100,
        analysis_model="gpu_resident",
        backend="compute_sanitizer",
        instrumentation="compute_sanitizer",
    )
    defaults.update(overrides)
    return TraceHeader.for_recording(**defaults)


# --------------------------------------------------------------------------- #
# codec round-trips
# --------------------------------------------------------------------------- #
class TestEventCodecs:
    def test_every_event_class_has_a_sample(self):
        assert {type(e) for e in sample_events()} == set(ALL_EVENT_CLASSES)

    @pytest.mark.parametrize("event", sample_events(), ids=lambda e: type(e).__name__)
    def test_round_trip_equality(self, event):
        assert events_equal(decode_event(encode_event(event)), event)

    @pytest.mark.parametrize("event", sample_events(), ids=lambda e: type(e).__name__)
    def test_codec_output_survives_json_sanitize(self, event):
        encoded = encode_event(event)
        assert json_sanitize(encoded) == encoded
        assert json_roundtrip(encoded) == encoded
        assert events_equal(decode_event(json_roundtrip(encoded)), event)

    def test_decoded_types_are_rich(self):
        launch = next(e for e in sample_events() if isinstance(e, KernelLaunchEvent))
        decoded = decode_event(encode_event(launch))
        assert isinstance(decoded.grid, tuple)
        assert all(isinstance(a, KernelArgumentInfo) for a in decoded.arguments)
        profile = next(e for e in sample_events() if isinstance(e, KernelMemoryProfile))
        decoded_profile = decode_event(encode_event(profile))
        assert all(isinstance(k, int) for k in decoded_profile.object_access_counts)
        instr = next(e for e in sample_events() if isinstance(e, InstructionEvent))
        assert decode_event(encode_event(instr)).kind is InstructionKind.BARRIER

    def test_unknown_tag_raises(self):
        with pytest.raises(TraceFormatError):
            decode_event({"type": "NoSuchEvent"})

    def test_schemas_cover_all_builtin_events(self):
        schemas = current_schemas()
        assert {cls.__name__ for cls in ALL_EVENT_CLASSES} <= set(schemas)

    @settings(max_examples=50, deadline=None)
    @given(
        kernel_name=st.text(max_size=20),
        launch_id=st.integers(min_value=0, max_value=1 << 40),
        grid=st.tuples(*[st.integers(min_value=1, max_value=1024)] * 3),
        block=st.tuples(*[st.integers(min_value=1, max_value=1024)] * 3),
        duration_ns=st.integers(min_value=0, max_value=1 << 50),
        grid_index=st.integers(min_value=0, max_value=1 << 20),
        args=st.lists(
            st.tuples(st.integers(min_value=0, max_value=1 << 48),
                      st.integers(min_value=1, max_value=1 << 30),
                      st.integers(min_value=0, max_value=1 << 30),
                      st.integers(min_value=0, max_value=1 << 20),
                      st.text(max_size=8)),
            max_size=4,
        ),
    )
    def test_kernel_launch_round_trip_property(self, kernel_name, launch_id, grid,
                                               block, duration_ns, grid_index, args):
        event = KernelLaunchEvent(
            kernel_name=kernel_name, launch_id=launch_id, grid=grid, block=block,
            duration_ns=duration_ns, grid_index=grid_index,
            arguments=tuple(KernelArgumentInfo(*a) for a in args),
        )
        assert events_equal(decode_event(json_roundtrip(encode_event(event))), event)

    @settings(max_examples=50, deadline=None)
    @given(
        object_id=st.integers(min_value=0, max_value=1 << 40),
        address=st.integers(min_value=0, max_value=1 << 48),
        size=st.integers(min_value=1, max_value=1 << 34),
        kind=st.sampled_from(["device", "managed", "pinned"]),
    )
    def test_memory_alloc_round_trip_property(self, object_id, address, size, kind):
        event = MemoryAllocEvent(address=address, size=size, object_id=object_id,
                                 memory_kind=kind)
        assert events_equal(decode_event(json_roundtrip(encode_event(event))), event)


# --------------------------------------------------------------------------- #
# container writer/reader
# --------------------------------------------------------------------------- #
class TestContainer:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        events = sample_events()
        with TraceWriter(path, make_header(), chunk_events=4) as writer:
            for event in events:
                writer.write(event)
            footer = writer.close()
        assert footer.event_count == len(events)
        assert footer.chunk_count == (len(events) + 3) // 4
        reader = TraceReader(path)
        assert event_lists_equal(reader.events(), events)
        assert reader.footer.digest == footer.digest
        assert reader.header.repro_version == repro.__version__
        assert reader.verify()

    def test_reader_without_index_streams_fine(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        events = sample_events()
        with TraceWriter(path, make_header(), chunk_events=3) as writer:
            for event in events:
                writer.write(event)
        index_path_for(path).unlink()
        reader = TraceReader(path)
        assert not reader.indexed
        assert event_lists_equal(reader.events(), events)
        assert reader.footer.event_count == len(events)
        assert reader.verify()

    def test_chunk_random_access(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        events = sample_events()
        with TraceWriter(path, make_header(), chunk_events=5) as writer:
            for event in events:
                writer.write(event)
        reader = TraceReader(path)
        assert reader.chunk_count == (len(events) + 4) // 5
        assert event_lists_equal(reader.read_chunk(1), events[5:10])
        with pytest.raises(TraceError):
            reader.read_chunk(99)

    def test_category_slicing(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        with TraceWriter(path, make_header(), chunk_events=2) as writer:
            for event in sample_events():
                writer.write(event)
        reader = TraceReader(path)
        launches = list(reader.events(categories=[EventCategory.KERNEL_LAUNCH]))
        assert [type(e) for e in launches] == [KernelLaunchEvent]
        both = list(reader.events(categories=["kernel_launch", "memcpy"]))
        assert {type(e) for e in both} == {KernelLaunchEvent, MemcpyEvent}
        with pytest.raises(TraceError):
            list(reader.events(categories=["nonsense"]))

    def test_grid_window_slicing(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        events = [
            KernelLaunchEvent(kernel_name=f"k{i}", launch_id=100 + i, grid_index=i)
            for i in range(6)
        ]
        events.append(MemoryAccessEvent(address=64, kernel_launch_id=102))
        events.append(MemoryAccessEvent(address=64, kernel_launch_id=105))
        events.append(MemcpyEvent(size=10))
        with TraceWriter(path, make_header()) as writer:
            for event in events:
                writer.write(event)
        got = list(TraceReader(path).events(start_grid_id=1, end_grid_id=2))
        names = [e.kernel_name for e in got if isinstance(e, KernelLaunchEvent)]
        assert names == ["k1", "k2"]
        accesses = [e for e in got if isinstance(e, MemoryAccessEvent)]
        assert [a.kernel_launch_id for a in accesses] == [102]
        # non-kernel bookkeeping events pass through
        assert any(isinstance(e, MemcpyEvent) for e in got)

    def test_grid_window_keeps_fine_grained_preceding_their_launch(self, tmp_path):
        # Backends emit a kernel's device-side events before the canonical
        # launch-end event, so the window filter must not depend on stream
        # order (regression: all fine-grained events were dropped).
        path = tmp_path / "t.pastatrace"
        events = []
        for i in range(4):
            events.append(MemoryAccessEvent(address=64 * i, kernel_launch_id=200 + i))
            events.append(InstructionEvent(kind=InstructionKind.BARRIER,
                                           kernel_launch_id=200 + i))
            events.append(KernelLaunchEvent(kernel_name=f"k{i}", launch_id=200 + i,
                                            grid_index=i))
        with TraceWriter(path, make_header()) as writer:
            for event in events:
                writer.write(event)
        got = list(TraceReader(path).events(start_grid_id=1, end_grid_id=2))
        launches = [e for e in got if isinstance(e, KernelLaunchEvent)]
        assert [e.kernel_name for e in launches] == ["k1", "k2"]
        accesses = [e for e in got if isinstance(e, MemoryAccessEvent)]
        assert [a.kernel_launch_id for a in accesses] == [201, 202]
        barriers = [e for e in got if isinstance(e, InstructionEvent)]
        assert [b.kernel_launch_id for b in barriers] == [201, 202]

    def test_grid_window_slice_of_fine_grained_recording(self, tmp_path):
        trace = tmp_path / "fine.pastatrace"
        api.run("alexnet", device="a100", tools=(), fine_grained=True,
                     batch_size=2, record_to=trace)
        out = tmp_path / "window.pastatrace"
        TraceReader(trace).slice_to(out, start_grid_id=0, end_grid_id=3)
        counts = TraceReader(out).footer.category_counts
        assert counts.get("kernel_launch") == 4
        assert fine_grained_event_count(counts) > 0

    def test_region_slicing(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        events = [
            MemcpyEvent(size=1),
            RegionEvent(label="hot", starting=True),
            MemcpyEvent(size=2),
            RegionEvent(label="hot", starting=False),
            MemcpyEvent(size=3),
        ]
        with TraceWriter(path, make_header()) as writer:
            for event in events:
                writer.write(event)
        got = list(TraceReader(path).events(region="hot"))
        sizes = [e.size for e in got if isinstance(e, MemcpyEvent)]
        assert sizes == [2]
        assert sum(isinstance(e, RegionEvent) for e in got) == 2

    def test_slice_to_writes_replayable_trace(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        with TraceWriter(path, make_header(), chunk_events=3) as writer:
            for event in sample_events():
                writer.write(event)
        out = tmp_path / "sliced.pastatrace"
        reader = TraceReader(path)
        footer = reader.slice_to(out, categories=["kernel_launch", "memory_alloc"])
        sliced = TraceReader(out)
        assert footer.event_count == 2
        assert sliced.verify()
        assert sliced.header.workload["sliced_from"] == str(path)
        assert {type(e) for e in sliced.events()} == {KernelLaunchEvent, MemoryAllocEvent}

    def test_detects_corruption(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        with TraceWriter(path, make_header(), chunk_events=2) as writer:
            writer.write(MemcpyEvent(size=1))
            writer.write(MemcpyEvent(size=2))
        index = json.loads(index_path_for(path).read_text())
        chunk = index["chunks"][0]
        # Splice in a forged chunk (one event altered) between the original
        # header and footer: the footer digest must no longer match.
        raw = path.read_bytes()
        header_bytes = raw[:chunk["offset"]]
        footer_bytes = raw[chunk["offset"] + chunk["length"]:]
        from repro.core.serialization import stable_json_dumps

        forged_lines = b"".join(
            (stable_json_dumps(encode_event(e)) + "\n").encode()
            for e in (MemcpyEvent(size=1), MemcpyEvent(size=999))
        )
        path.write_bytes(header_bytes + gzip.compress(forged_lines, mtime=0) + footer_bytes)
        index_path_for(path).unlink()
        assert not TraceReader(path).verify()

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        header = make_header()
        header.schemas = dict(header.schemas, KernelLaunchEvent="deadbeefdeadbeef")
        with TraceWriter(path, header) as writer:
            writer.write(MemcpyEvent(size=1))
        with pytest.raises(TraceSchemaError):
            TraceReader(path)
        reader = TraceReader(path, strict_schema=False)
        assert reader.footer.event_count == 1

    def test_unknown_event_type_in_schemas_raises(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        header = make_header()
        header.schemas = dict(header.schemas, FutureEvent="0123456789abcdef")
        with TraceWriter(path, header) as writer:
            writer.write(MemcpyEvent(size=1))
        with pytest.raises(TraceSchemaError):
            TraceReader(path)

    def test_newer_format_version_raises(self, tmp_path):
        path = tmp_path / "t.pastatrace"
        header = make_header()
        header.format_version = TRACE_FORMAT_VERSION + 1
        with TraceWriter(path, header) as writer:
            writer.write(MemcpyEvent(size=1))
        with pytest.raises(TraceFormatError):
            TraceReader(path)

    def test_non_trace_file_raises(self, tmp_path):
        path = tmp_path / "bogus.pastatrace"
        path.write_bytes(gzip.compress(b'{"hello": "world"}\n'))
        with pytest.raises(TraceFormatError):
            TraceReader(path)
        with pytest.raises(TraceError):
            TraceReader(tmp_path / "missing.pastatrace")

    def test_writer_rejects_use_after_close(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.pastatrace", make_header())
        writer.close()
        with pytest.raises(TraceError):
            writer.write(MemcpyEvent(size=1))


# --------------------------------------------------------------------------- #
# address resolution
# --------------------------------------------------------------------------- #
class TestTraceAddressResolver:
    def test_resolves_within_allocations(self):
        resolver = TraceAddressResolver()
        resolver.observe(MemoryAllocEvent(address=0x1000, size=0x100, object_id=1))
        resolver.observe(MemoryAllocEvent(address=0x3000, size=0x80, object_id=2))
        assert resolver.resolve(0x1000) == (1, 0x100)
        assert resolver.resolve(0x10FF) == (1, 0x100)
        assert resolver.resolve(0x1100) is None
        assert resolver.resolve(0x3040) == (2, 0x80)
        assert resolver.resolve(0x0) is None

    def test_freed_objects_still_resolve_and_reuse_wins(self):
        resolver = TraceAddressResolver()
        resolver.observe(MemoryAllocEvent(address=0x1000, size=0x100, object_id=1))
        resolver.observe(MemoryFreeEvent(address=0x1000, size=0x100, object_id=1))
        assert resolver.resolve(0x1010) == (1, 0x100)
        resolver.observe(MemoryAllocEvent(address=0x1000, size=0x200, object_id=9))
        assert resolver.resolve(0x1010) == (9, 0x200)


# --------------------------------------------------------------------------- #
# session recording + replay parity (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestRecordReplayParity:
    def test_replay_reports_equal_live_session(self, tmp_path):
        trace = tmp_path / "alexnet.pastatrace"
        live = api.run("alexnet", device="a100", tools=DEFAULT_TOOLSET(),
                            batch_size=2, record_to=trace)
        replayed = replay_trace(trace, tools=DEFAULT_TOOLSET())
        assert json_roundtrip(replayed.reports()) == json_roundtrip(live.reports())
        assert replayed.events_replayed == TraceReader(trace).footer.event_count > 0

    def test_replay_parity_on_amd_backend(self, tmp_path):
        trace = tmp_path / "amd.pastatrace"
        live = api.run("alexnet", device="mi300x",
                            tools=[KernelFrequencyTool(), MemoryCharacteristicsTool()],
                            batch_size=2, record_to=trace)
        replayed = replay_trace(
            trace, tools=[KernelFrequencyTool(), MemoryCharacteristicsTool()]
        )
        assert json_roundtrip(replayed.reports()) == json_roundtrip(live.reports())
        assert TraceReader(trace).header.backend == "rocprofiler"

    def test_replay_parity_fine_grained(self, tmp_path):
        trace = tmp_path / "fine.pastatrace"
        live = api.run("alexnet", device="a100", tools=[KernelFrequencyTool()],
                            fine_grained=True, batch_size=2, record_to=trace)
        counts = TraceReader(trace).footer.category_counts
        assert fine_grained_event_count(counts) > 0
        replayed = replay_trace(trace, tools=[KernelFrequencyTool()])
        assert json_roundtrip(replayed.reports()) == json_roundtrip(live.reports())

    def test_replay_with_other_analysis_model_changes_overhead(self, tmp_path):
        trace = tmp_path / "t.pastatrace"
        api.run("alexnet", device="a100", tools=(), batch_size=2, record_to=trace)
        gpu = replay_trace(trace).reports()["overhead"]
        cpu = replay_trace(trace, analysis_model="cpu_side").reports()["overhead"]
        assert gpu["analysis_model"] == "gpu_resident"
        assert cpu["analysis_model"] == "cpu_side"
        assert cpu["normalized_overhead"] > gpu["normalized_overhead"]
        assert cpu["kernels"] == gpu["kernels"] > 0

    def test_replay_range_filter_matches_live(self, tmp_path):
        from repro.core.annotations import RangeFilter

        trace = tmp_path / "t.pastatrace"
        window = RangeFilter()
        window.set_grid_window(0, 4)
        live = api.run("alexnet", device="a100", tools=[KernelFrequencyTool()],
                            batch_size=2, range_filter=window, record_to=trace)
        # The tap records upstream of the range filter, so the full stream is
        # on disk and any window can be re-applied offline.
        replay_window = RangeFilter()
        replay_window.set_grid_window(0, 4)
        replayed = replay_trace(trace, tools=[KernelFrequencyTool()],
                                range_filter=replay_window)
        assert json_roundtrip(replayed.reports()) == json_roundtrip(live.reports())

    def test_fine_grained_tool_on_coarse_trace_raises(self, tmp_path):
        class FineTool(KernelFrequencyTool):
            tool_name = "needs_fine"
            requires_fine_grained = True

        trace = tmp_path / "coarse.pastatrace"
        api.run("alexnet", device="a100", tools=(), batch_size=2, record_to=trace)
        with pytest.raises(TraceError, match="fine-grained"):
            replay_trace(trace, tools=[FineTool()])
        # A fine-grained recording accepts the same tool.
        fine = tmp_path / "fine.pastatrace"
        api.run("alexnet", device="a100", tools=(), fine_grained=True,
                     batch_size=2, record_to=fine)
        assert replay_trace(fine, tools=[FineTool()]).events_replayed > 0

    def test_crashed_recording_is_marked_incomplete(self, tmp_path, a100_runtime):
        trace = tmp_path / "t.pastatrace"
        session = PastaSession(a100_runtime, record_to=trace)
        with pytest.raises(RuntimeError):
            with session:
                session.begin_region("r")
                raise RuntimeError("workload died")
        reader = TraceReader(trace)
        assert reader.footer.complete is False
        assert "workload died" in reader.footer.abort_reason
        assert reader.verify()  # what was written is internally consistent
        with pytest.raises(TraceError, match="incomplete"):
            list(reader.events())
        with pytest.raises(TraceError, match="incomplete"):
            replay_trace(trace)
        partial = TraceReader(trace, allow_incomplete=True)
        assert [e.label for e in partial.events()] == ["r"]

    def test_session_trace_lifecycle(self, tmp_path, a100_runtime):
        trace = tmp_path / "t.pastatrace"
        session = PastaSession(a100_runtime, tools=[KernelFrequencyTool()],
                               record_to=trace, trace_metadata={"note": "unit"})
        assert session.trace_path == trace
        with session:
            assert session.is_recording
            session.begin_region("r")
            session.end_region("r")
        assert not session.is_recording
        reader = TraceReader(trace)
        assert reader.header.workload == {"note": "unit"}
        assert reader.footer.category_counts == {"region_start": 1, "region_stop": 1}
        assert reader.verify()


# --------------------------------------------------------------------------- #
# reports() duplicate-name regression (satellite)
# --------------------------------------------------------------------------- #
class TestDuplicateToolNames:
    def test_session_rejects_duplicate_tool_names(self, a100_runtime):
        with pytest.raises(PastaError, match="distinct tool_name"):
            PastaSession(a100_runtime,
                         tools=[KernelFrequencyTool(), KernelFrequencyTool()])

    def test_collect_reports_rejects_duplicates(self):
        with pytest.raises(PastaError, match="distinct tool_name"):
            collect_reports([KernelFrequencyTool(), KernelFrequencyTool()])

    def test_collect_reports_rejects_overhead_collision(self):
        from repro.core.overhead import OverheadAccountant
        from repro.gpusim.device import A100

        class Impostor(KernelFrequencyTool):
            tool_name = "overhead"

        accountant = OverheadAccountant(device_spec=A100)
        with pytest.raises(PastaError, match="overhead"):
            collect_reports([Impostor()], accountant)
        # Without an accountant the name is legal.
        assert "overhead" in collect_reports([Impostor()], None)

    def test_replayer_rejects_duplicates_before_replaying(self, tmp_path):
        trace = tmp_path / "t.pastatrace"
        with TraceWriter(trace, make_header()) as writer:
            writer.write(MemcpyEvent(size=1))
        with pytest.raises(PastaError, match="distinct tool_name"):
            replay_trace(trace, tools=[KernelFrequencyTool(), KernelFrequencyTool()])


# --------------------------------------------------------------------------- #
# spec-driven record/replay helpers
# --------------------------------------------------------------------------- #
class TestJobTraceHelpers:
    def test_workload_signature_ignores_analysis_fields(self):
        base = {"model": "alexnet", "device": "a100", "mode": "inference",
                "iterations": 1, "batch_size": 2, "backend": None,
                "fine_grained": False}
        a = workload_signature({**base, "tools": ["kernel_frequency"],
                                    "analysis_model": "gpu_resident"})
        b = workload_signature({**base, "tools": ["hotness", "memory_timeline"],
                                    "analysis_model": "cpu_side",
                                    "knobs": {"start_grid_id": 0}})
        assert a == b
        c = workload_signature({**base, "device": "rtx3060"})
        assert c != a

    def test_execute_payload_can_emit_a_trace(self, tmp_path):
        from repro.api import execute_payload

        trace = tmp_path / "job.pastatrace"
        payload = {"model": "alexnet", "batch_size": 2, "tools": ["kernel_frequency"]}
        record = execute_payload(payload, record_to=trace)
        assert record["execution"] == "simulate"
        replayed = replay_trace(trace, tools=[KernelFrequencyTool()])
        assert json_roundtrip(replayed.reports()) == record["reports"]

    def test_record_then_replay_payload(self, tmp_path):
        trace = tmp_path / "job.pastatrace"
        payload = {"model": "alexnet", "device": "a100", "batch_size": 2,
                   "tools": ["kernel_frequency"], "analysis_model": "gpu_resident"}
        summary = record_workload_trace(payload, trace)
        assert summary["model"] == "alexnet" and summary["kernel_launches"] > 0
        record = replay_payload(payload, trace, summary)
        assert record["status"] == "ok"
        assert record["execution"] == "replay"
        assert record["summary"] == summary
        assert "kernel_frequency" in record["reports"]
        assert "overhead" in record["reports"]


# --------------------------------------------------------------------------- #
# campaign replay execution mode (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestCampaignReplayMode:
    def _counting_execute(self, monkeypatch):
        calls = {"n": 0}
        original = api_runner.execute

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(api_runner, "execute", counting)
        return calls

    def test_replay_mode_simulates_each_workload_once(self, monkeypatch):
        calls = self._counting_execute(monkeypatch)
        spec = CampaignSpec(
            name="replay-acceptance",
            models=["alexnet"],
            devices=["a100"],
            tools=["kernel_frequency", "memory_characteristics", "hotness"],
            analysis_models=["gpu_resident", "cpu_side"],
            batch_size=2,
            execution="replay",
        )
        assert spec.job_count() == 6  # >= 3 tool configs of one workload
        result = CampaignScheduler().run(spec)
        assert result.execution == "replay"
        assert result.failed == 0
        assert result.executed == 6
        assert calls["n"] == 1  # the simulation ran exactly once
        assert result.workloads_recorded == 1
        for record in result.records():
            assert record["execution"] == "replay"
            assert record["reports"]["overhead"]["kernels"] > 0

    def test_replay_records_match_simulate_records(self, monkeypatch):
        # Tools whose reports embed the runtime's device index (e.g.
        # memory_timeline) are excluded: that label comes from a global
        # per-process runtime counter, so it differs between any two separate
        # simulations regardless of execution mode.
        spec = CampaignSpec(
            name="parity", models=["alexnet"], devices=["a100"], batch_size=2,
            tools=["kernel_frequency"], analysis_models=["gpu_resident", "cpu_side"],
        )
        simulate = CampaignScheduler().run(spec)
        spec.execution = "replay"
        replayed = CampaignScheduler().run(spec)
        assert simulate.failed == replayed.failed == 0
        for sim, rep in zip(simulate.records(), replayed.records()):
            assert sim["job"] == rep["job"]
            assert sim["summary"] == rep["summary"]
            assert sim["reports"] == rep["reports"]

    def test_replay_mode_groups_distinct_workloads(self, monkeypatch):
        calls = self._counting_execute(monkeypatch)
        spec = CampaignSpec(
            name="two-workloads", models=["alexnet"], devices=["a100", "rtx3060"],
            tools=["kernel_frequency", "memory_timeline"], batch_size=2,
            execution="replay",
        )
        result = CampaignScheduler().run(spec)
        assert result.failed == 0
        assert result.total == 4
        assert calls["n"] == 2  # one simulation per device
        assert result.workloads_recorded == 2

    def test_replay_mode_respects_cache(self, tmp_path, monkeypatch):
        from repro.campaign import ResultCache

        calls = self._counting_execute(monkeypatch)
        spec = CampaignSpec(
            name="cached-replay", models=["alexnet"], devices=["a100"],
            tools=["kernel_frequency", "hotness"], batch_size=2, execution="replay",
        )
        cache = ResultCache(tmp_path / "cache")
        first = CampaignScheduler(cache=cache).run(spec)
        assert first.executed == 2 and calls["n"] == 1
        second = CampaignScheduler(cache=cache).run(spec)
        assert second.cached == 2 and second.executed == 0
        assert calls["n"] == 1  # nothing re-simulated on the second run
        assert second.workloads_recorded == 0

    def test_replay_mode_keeps_traces_in_trace_dir(self, tmp_path):
        spec = CampaignSpec(
            name="keep-traces", models=["alexnet"], devices=["a100"],
            tools=["kernel_frequency"], batch_size=2, execution="replay",
        )
        result = CampaignScheduler(trace_dir=tmp_path / "traces").run(spec)
        assert result.failed == 0
        traces = sorted((tmp_path / "traces").glob("*.pastatrace"))
        assert len(traces) == 1
        assert TraceReader(traces[0]).verify()

    def test_recording_failure_fails_whole_group(self, monkeypatch):
        def broken(*args, **kwargs):
            raise RuntimeError("simulator exploded")

        monkeypatch.setattr(api_runner, "execute", broken)
        spec = CampaignSpec(
            name="broken", models=["alexnet"], devices=["a100"],
            tools=["kernel_frequency", "hotness"], execution="replay",
        )
        result = CampaignScheduler().run(spec)
        assert result.failed == result.total == 2
        assert all("workload recording failed" in o.error for o in result.failures())

    def test_unknown_tool_fails_only_its_own_job(self):
        jobs = CampaignSpec(
            name="bad-tool", models=["alexnet"], devices=["a100"], batch_size=2,
            tools=["no_such_tool", "kernel_frequency"], execution="replay",
        )
        result = CampaignScheduler().run(jobs)
        assert result.total == 2
        assert result.failed == 1
        assert result.executed == 1
        assert "no_such_tool" in result.failures()[0].error

    def test_scheduler_validates_execution(self):
        with pytest.raises(Exception):
            CampaignScheduler(execution="teleport")
        with pytest.raises(Exception):
            CampaignSpec(name="x", models=["alexnet"], execution="teleport")

    def test_spec_execution_round_trips_through_json(self):
        spec = CampaignSpec(name="x", models=["alexnet"], execution="replay")
        clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.execution == "replay"
