"""Tests for the ``pasta profile`` subcommand of the umbrella CLI."""

from __future__ import annotations

import json

import pytest

from repro.commands import build_parser, main


class TestProfile:
    def test_list_tools(self, capsys):
        assert main(["profile", "--list-tools"]) == 0
        out = capsys.readouterr().out
        assert "kernel_frequency" in out
        assert "memory_characteristics" in out

    def test_list_models_and_devices(self, capsys):
        assert main(["profile", "--list-models"]) == 0
        assert "alexnet" in capsys.readouterr().out
        assert main(["profile", "--list-devices"]) == 0
        assert "mi300x" in capsys.readouterr().out
        assert main(["profile", "--list-backends"]) == 0
        assert "nvbit" in capsys.readouterr().out

    def test_requires_subcommand_model_and_tool(self):
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["profile", "resnet18"])

    def test_basic_profiling_run_text_output(self, capsys):
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[kernel_frequency]" in out
        assert "total_launches" in out
        assert "[run]" in out

    def test_nested_report_values_render_structured(self, capsys):
        # The old flat renderer printed nested rows as one opaque repr line;
        # the umbrella CLI indents mappings and renders list rows as
        # bullet items with their fields broken out.
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--batch-size", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top_kernels:" in out
        assert "- kernel: " in out           # list-of-rows bullet
        assert "invocations: " in out        # row field on its own line
        assert "KernelFrequencyEntry(" not in out   # no dataclass reprs
        assert "[{" not in out                      # no flattened dict lists

    def test_json_output_with_multiple_tools(self, capsys):
        code = main(["profile", "resnet18", "-t", "kernel_frequency",
                     "-t", "memory_characteristics", "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] > 10
        assert data["memory_characteristics"]["working_set_bytes"] > 0
        assert data["run"]["model"] == "resnet18"
        assert "overhead" in data

    def test_grid_window_limits_analysis(self, capsys):
        code = main(["profile", "alexnet", "-t", "kernel_frequency",
                     "--batch-size", "2",
                     "--start-grid-id", "0", "--end-grid-id", "4", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] == 5

    def test_train_mode_and_backend_selection(self, capsys):
        code = main(["profile", "resnet18", "-t", "memory_timeline",
                     "--mode", "train", "--backend", "nvbit",
                     "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overhead"]["backend"] == "nvbit"
        assert data["run"]["mode"] == "train"

    def test_analysis_model_flag(self, capsys):
        code = main(["profile", "alexnet", "-t", "kernel_frequency",
                     "--batch-size", "2", "--analysis-model", "cpu_side", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overhead"]["analysis_model"] == "cpu_side"

    def test_record_flag_writes_replayable_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.pastatrace"
        code = main(["profile", "alexnet", "-t", "kernel_frequency",
                     "--batch-size", "2", "--record", str(trace), "--json"])
        assert code == 0
        assert trace.exists()
        out = capsys.readouterr().out
        live = json.loads(out[out.index("{"):])
        assert main(["trace", "replay", str(trace),
                     "-t", "kernel_frequency", "--json"]) == 0
        out = capsys.readouterr().out
        replayed = json.loads(out[out.index("{"):])
        assert replayed["kernel_frequency"] == live["kernel_frequency"]

    def test_unknown_tool_is_a_clean_error(self, capsys):
        code = main(["profile", "alexnet", "-t", "not_a_tool", "--batch-size", "2"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_device_is_a_clean_error(self, capsys):
        code = main(["profile", "alexnet", "-t", "kernel_frequency",
                     "--device", "h100"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_is_a_clean_error(self, capsys):
        code = main(["profile", "vgg16", "-t", "kernel_frequency"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "vgg16" in err

    def test_amd_device_uses_rocprofiler_by_default(self, capsys):
        code = main(["profile", "bert", "-t", "kernel_frequency",
                     "--device", "mi300x", "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overhead"]["backend"] == "rocprofiler"

    def test_umbrella_parser_lists_all_subcommands(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--help"])
        out = capsys.readouterr().out
        for name in ("profile", "campaign", "trace"):
            assert name in out
