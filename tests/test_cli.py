"""Tests for the ``pasta-profile`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_tools(self, capsys):
        assert main(["--list-tools"]) == 0
        out = capsys.readouterr().out
        assert "kernel_frequency" in out
        assert "memory_characteristics" in out

    def test_requires_model_and_tool(self):
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main(["resnet18"])

    def test_basic_profiling_run_text_output(self, capsys):
        code = main(["alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[kernel_frequency]" in out
        assert "total_launches" in out
        assert "[run]" in out

    def test_json_output_with_multiple_tools(self, capsys):
        code = main(["resnet18", "-t", "kernel_frequency", "-t", "memory_characteristics",
                     "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] > 10
        assert data["memory_characteristics"]["working_set_bytes"] > 0
        assert data["run"]["model"] == "resnet18"
        assert "overhead" in data

    def test_grid_window_limits_analysis(self, capsys):
        code = main(["alexnet", "-t", "kernel_frequency", "--batch-size", "2",
                     "--start-grid-id", "0", "--end-grid-id", "4", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kernel_frequency"]["total_launches"] == 5

    def test_train_mode_and_backend_selection(self, capsys):
        code = main(["resnet18", "-t", "memory_timeline", "--mode", "train",
                     "--backend", "nvbit", "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overhead"]["backend"] == "nvbit"
        assert data["run"]["mode"] == "train"

    def test_unknown_tool_is_a_clean_error(self, capsys):
        code = main(["alexnet", "-t", "not_a_tool", "--batch-size", "2"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_device_is_a_clean_error(self, capsys):
        code = main(["alexnet", "-t", "kernel_frequency", "--device", "h100"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["vgg16"])

    def test_amd_device_uses_rocprofiler_by_default(self, capsys):
        code = main(["bert", "-t", "kernel_frequency", "--device", "mi300x",
                     "--batch-size", "2", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["overhead"]["backend"] == "rocprofiler"
