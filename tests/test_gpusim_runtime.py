"""Tests for the CUDA/HIP runtime facades and their callback hooks."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpusim.device import A100, MI300X, MiB, RTX3060
from repro.gpusim.kernel import GridConfig, KernelArgument
from repro.gpusim.runtime import (
    CudaRuntime,
    HipRuntime,
    MemcpyKind,
    RuntimeCallbacks,
    create_runtime,
)


class RecordingSubscriber(RuntimeCallbacks):
    """Collects every callback it receives, for assertions."""

    def __init__(self) -> None:
        self.calls: list[tuple[str, object]] = []

    def on_memory_alloc(self, runtime, obj):
        self.calls.append(("alloc", obj))

    def on_memory_free(self, runtime, obj):
        self.calls.append(("free", obj))

    def on_memcpy(self, runtime, record):
        self.calls.append(("memcpy", record))

    def on_memset(self, runtime, record):
        self.calls.append(("memset", record))

    def on_kernel_launch_begin(self, runtime, launch):
        self.calls.append(("launch_begin", launch))

    def on_kernel_launch_end(self, runtime, launch):
        self.calls.append(("launch_end", launch))

    def on_synchronize(self, runtime, record):
        self.calls.append(("sync", record))

    def on_runtime_api(self, runtime, api_name):
        self.calls.append(("api", api_name))

    def names(self) -> list[str]:
        return [name for name, _payload in self.calls]


class TestRuntimeConstruction:
    def test_create_runtime_selects_vendor_class(self):
        assert isinstance(create_runtime(A100), CudaRuntime)
        assert isinstance(create_runtime(MI300X), HipRuntime)

    def test_vendor_mismatch_rejected(self):
        with pytest.raises(DeviceError):
            CudaRuntime(MI300X)
        with pytest.raises(DeviceError):
            HipRuntime(A100)

    def test_api_prefix(self):
        assert create_runtime(A100).api_prefix == "cuda"
        assert create_runtime(MI300X).api_prefix == "hip"


class TestMemoryApis:
    def test_malloc_free_roundtrip(self, a100_runtime):
        obj = a100_runtime.malloc(1 * MiB, tag="weights")
        assert obj.live and obj.tag == "weights"
        a100_runtime.free(obj)
        assert not obj.live

    def test_malloc_managed_registers_with_uvm(self):
        rt = create_runtime(RTX3060, enable_uvm=True)
        obj = rt.malloc_managed(8 * MiB)
        assert rt.uvm is not None
        assert rt.uvm.is_managed_address(obj.address)

    def test_api_call_counting(self, a100_runtime):
        a100_runtime.malloc(4096)
        a100_runtime.malloc(4096)
        a100_runtime.synchronize()
        assert a100_runtime.api_call_counts["cudaMalloc"] == 2
        assert a100_runtime.api_call_counts["cudaDeviceSynchronize"] == 1

    def test_hip_api_names(self, mi300x_runtime):
        mi300x_runtime.malloc(4096)
        assert "hipMalloc" in mi300x_runtime.api_call_counts

    def test_memcpy_durations_scale_with_size(self, a100_runtime):
        small = a100_runtime.memcpy(1 * MiB, MemcpyKind.HOST_TO_DEVICE)
        large = a100_runtime.memcpy(64 * MiB, MemcpyKind.HOST_TO_DEVICE)
        assert large.duration_ns > small.duration_ns

    def test_device_to_device_copy_is_faster_than_pcie(self, a100_runtime):
        h2d = a100_runtime.memcpy(64 * MiB, MemcpyKind.HOST_TO_DEVICE)
        d2d = a100_runtime.memcpy(64 * MiB, MemcpyKind.DEVICE_TO_DEVICE)
        assert d2d.duration_ns < h2d.duration_ns


class TestKernelLaunch:
    def test_launch_records_and_orders_on_stream(self, a100_runtime):
        launch1 = a100_runtime.launch_kernel("k1", GridConfig.for_elements(1024), duration_ns=100)
        launch2 = a100_runtime.launch_kernel("k2", GridConfig.for_elements(1024), duration_ns=100)
        assert launch2.start_time_ns >= launch1.end_time_ns
        assert a100_runtime.kernel_launches == [launch1, launch2]
        assert a100_runtime.total_kernel_time_ns() == 200

    def test_launch_with_managed_memory_adds_fault_time(self):
        rt = create_runtime(RTX3060, enable_uvm=True)
        obj = rt.malloc_managed(32 * MiB)
        arg = KernelArgument(address=obj.address, size=obj.size, accesses_per_byte=0.1)
        launch = rt.launch_kernel("uvm_kernel", GridConfig.for_elements(1024),
                                  arguments=[arg], duration_ns=10_000)
        assert launch.duration_ns > 10_000
        assert rt.uvm.stats.page_faults > 0

    def test_synchronize_advances_past_kernel_completion(self, a100_runtime):
        a100_runtime.launch_kernel("k", GridConfig.for_elements(64), duration_ns=123_456)
        now = a100_runtime.synchronize()
        assert now >= 123_456


class TestSubscribers:
    def test_all_callbacks_fire(self, a100_runtime):
        sub = RecordingSubscriber()
        a100_runtime.subscribe(sub)
        obj = a100_runtime.malloc(4096)
        a100_runtime.memcpy(4096, MemcpyKind.HOST_TO_DEVICE)
        a100_runtime.memset(obj.address, 4096)
        a100_runtime.launch_kernel("k", GridConfig.for_elements(128))
        a100_runtime.synchronize()
        a100_runtime.free(obj)
        names = sub.names()
        for expected in ("alloc", "memcpy", "memset", "launch_begin", "launch_end", "sync", "free", "api"):
            assert expected in names

    def test_unsubscribe_stops_callbacks(self, a100_runtime):
        sub = RecordingSubscriber()
        a100_runtime.subscribe(sub)
        a100_runtime.malloc(4096)
        count = len(sub.calls)
        a100_runtime.unsubscribe(sub)
        a100_runtime.malloc(4096)
        assert len(sub.calls) == count

    def test_duplicate_subscription_is_idempotent(self, a100_runtime):
        sub = RecordingSubscriber()
        a100_runtime.subscribe(sub)
        a100_runtime.subscribe(sub)
        a100_runtime.malloc(4096)
        # One alloc -> one "api" + one "alloc" callback, not two of each.
        assert sub.names().count("alloc") == 1
