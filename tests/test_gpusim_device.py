"""Tests for the simulated device specifications and device instances."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError
from repro.gpusim.device import (
    A100,
    DeviceSpec,
    GiB,
    GpuDevice,
    MI300X,
    RTX3060,
    Vendor,
    get_device_spec,
)


class TestDeviceSpec:
    def test_builtin_specs_match_table_iii(self):
        assert A100.memory_bytes == 80 * GiB
        assert A100.vendor is Vendor.NVIDIA
        assert RTX3060.memory_bytes == 12 * GiB
        assert RTX3060.vendor is Vendor.NVIDIA
        assert MI300X.vendor is Vendor.AMD

    def test_vendor_runtime_name(self):
        assert Vendor.NVIDIA.runtime_name == "cuda"
        assert Vendor.AMD.runtime_name == "hip"

    def test_max_resident_threads(self):
        assert A100.max_resident_threads == A100.sm_count * A100.threads_per_sm

    def test_lookup_by_name(self):
        assert get_device_spec("a100") is A100
        assert get_device_spec("RTX3060") is RTX3060
        assert get_device_spec("3060") is RTX3060
        assert get_device_spec("mi300x") is MI300X

    def test_lookup_unknown_name_raises(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device_spec("h100")

    def test_with_memory_limit(self):
        limited = A100.with_memory_limit(4 * GiB)
        assert limited.memory_bytes == 4 * GiB
        assert limited.name == A100.name
        # The original spec is unchanged (frozen dataclass).
        assert A100.memory_bytes == 80 * GiB

    def test_with_memory_limit_rejects_invalid(self):
        with pytest.raises(DeviceError):
            A100.with_memory_limit(0)
        with pytest.raises(DeviceError):
            A100.with_memory_limit(200 * GiB)

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="bad", vendor=Vendor.NVIDIA, memory_bytes=0, sm_count=1,
                threads_per_sm=1, core_clock_mhz=1000, memory_bandwidth_gbs=1.0,
                pcie_bandwidth_gbs=1.0, compute_capability="sm_00",
            )


class TestGpuDevice:
    def test_clock_advances_monotonically(self):
        device = GpuDevice(spec=A100)
        assert device.now() == 0
        device.advance(100)
        device.advance(50)
        assert device.now() == 150

    def test_clock_cannot_go_backwards(self):
        device = GpuDevice(spec=A100)
        with pytest.raises(DeviceError):
            device.advance(-1)

    def test_device_indices_are_unique(self):
        d1, d2 = GpuDevice(spec=A100), GpuDevice(spec=RTX3060)
        assert d1.index != d2.index

    def test_profiler_reservation_reduces_usable_memory(self):
        device = GpuDevice(spec=RTX3060)
        full = device.usable_memory_bytes
        device.reserve_profiler_memory(4 * 1024 * 1024)
        assert device.usable_memory_bytes == full - 4 * 1024 * 1024

    def test_profiler_reservation_validation(self):
        device = GpuDevice(spec=RTX3060)
        with pytest.raises(DeviceError):
            device.reserve_profiler_memory(-1)
        with pytest.raises(DeviceError):
            device.reserve_profiler_memory(RTX3060.memory_bytes + 1)
