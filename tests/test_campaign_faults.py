"""Tests for the deterministic fault-injection harness and failure policies."""

from __future__ import annotations

import json

import pytest

from repro.api import ProfileSpec
from repro.campaign import (
    CampaignScheduler,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    ResultCache,
    ResultStore,
    activate_faults,
    active_faults,
    deactivate_faults,
    faults_scope,
)
from repro.campaign.cache import QUARANTINE_SUFFIX
from repro.campaign.faults import FAULTS_ENV, NULL_FAULTS, from_env
from repro.campaign import scheduler as scheduler_module
from repro.errors import ReproError


def _jobs(n=3):
    return [ProfileSpec(model="alexnet", batch_size=b, iterations=1)
            for b in range(1, n + 1)]


def _stub_runner(payload):
    return {"job": dict(payload), "status": "ok",
            "summary": {"total_time_ms": 1.0}, "reports": []}


@pytest.fixture(autouse=True)
def _disarm():
    deactivate_faults()
    yield
    deactivate_faults()


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ReproError, match="kind"):
            FaultRule(site="x", kind="nope")
        with pytest.raises(ReproError, match="site"):
            FaultRule(site="", kind="error")
        with pytest.raises(ReproError, match="probability"):
            FaultRule(site="x", kind="error", probability=1.5)
        with pytest.raises(ReproError, match=">= 0"):
            FaultRule(site="x", kind="error", after=-1)

    def test_roundtrip(self):
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", kind="torn_write", after=2),
            FaultRule(site="scheduler.job", kind="error", times=3,
                      probability=0.5, match="alexnet"),
        ), seed=42)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_parse_inline_and_file(self, tmp_path):
        text = json.dumps({"seed": 7, "rules": [
            {"site": "cache.put", "kind": "cache_corrupt"}]})
        inline = FaultPlan.parse(text)
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert FaultPlan.parse(str(path)) == inline
        assert inline.seed == 7
        assert inline.rules[0].kind == "cache_corrupt"

    def test_parse_rejects_garbage(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            FaultPlan.parse(str(tmp_path / "missing.json"))
        with pytest.raises(ReproError, match="JSON"):
            FaultPlan.parse("{not json")
        with pytest.raises(ReproError, match="unknown FaultPlan fields"):
            FaultPlan.parse('{"surprise": 1}')
        with pytest.raises(ReproError, match="unknown FaultRule fields"):
            FaultPlan.parse('{"rules": [{"site": "x", "kind": "error", "zz": 1}]}')


class TestFaultInjector:
    def test_error_kind_raises(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="s", kind="error"),)))
        with pytest.raises(InjectedFault, match="injected fault at s"):
            injector.fire("s")
        assert injector.injected == 1

    def test_after_and_times_schedule(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="s", kind="torn_write", after=2, times=2),)))
        fired = [injector.fire("s") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_match_filters_by_label(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="s", kind="torn_write", times=0, match="bert"),)))
        assert injector.fire("s", label="alexnet[bs1]") is None
        assert injector.fire("s", label="bert[bs2]") is not None

    def test_other_sites_untouched(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="s", kind="error"),)))
        assert injector.fire("other") is None

    def test_probability_is_seed_deterministic(self):
        plan = {"seed": 123, "rules": [
            {"site": "s", "kind": "torn_write", "times": 0, "probability": 0.5}]}
        sequences = []
        for _ in range(2):
            injector = FaultInjector(FaultPlan.from_dict(plan))
            sequences.append(
                [injector.fire("s") is not None for _ in range(32)]
            )
        assert sequences[0] == sequences[1]
        assert any(sequences[0]) and not all(sequences[0])

    def test_slow_kind_sleeps(self, monkeypatch):
        naps = []
        monkeypatch.setattr("repro.campaign.faults.time.sleep", naps.append)
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule(site="s", kind="slow", delay_s=0.25),)))
        rule = injector.fire("s")
        assert rule is not None and rule.kind == "slow"
        assert naps == [0.25]

    def test_env_arming(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert from_env() is NULL_FAULTS
        monkeypatch.setenv(FAULTS_ENV, json.dumps(
            {"rules": [{"site": "s", "kind": "error"}]}))
        injector = from_env()
        assert injector.enabled
        with pytest.raises(InjectedFault):
            injector.fire("s")

    def test_active_faults_lazily_arms_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, json.dumps(
            {"rules": [{"site": "s", "kind": "error"}]}))
        # Simulate a fresh process-pool worker: nothing armed yet.
        scheduler_module_faults = __import__(
            "repro.campaign.faults", fromlist=["_active"])
        monkeypatch.setattr(scheduler_module_faults, "_active", None)
        assert active_faults().enabled
        deactivate_faults()
        assert not active_faults().enabled

    def test_scope_restores_previous(self):
        outer = FaultInjector(FaultPlan())
        activate_faults(outer)
        with faults_scope(FaultInjector(FaultPlan())) as inner:
            assert active_faults() is inner
        assert active_faults() is outer


class TestRetryBackoff:
    def test_backoff_sleeps_between_retries(self, monkeypatch):
        naps = []
        monkeypatch.setattr(scheduler_module, "_sleep", naps.append)
        plan = FaultPlan(rules=(
            FaultRule(site="scheduler.job", kind="error", times=2),), seed=1)
        with faults_scope(FaultInjector(plan)):
            scheduler = CampaignScheduler(
                retries=3, backoff_s=0.1, backoff_cap_s=5.0,
                job_runner=_stub_runner,
            )
            result = scheduler.run(_jobs(1), name="retry")
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 3
        assert len(naps) == 2
        assert all(0.1 <= nap <= 5.0 for nap in naps)
        # The slept delays are surfaced on the outcome and its record.
        assert outcome.backoff_s == pytest.approx(sum(naps))
        entries = outcome.record["attempt_errors"]
        assert [e["backoff_s"] for e in entries] == [
            pytest.approx(n, abs=1e-5) for n in naps]

    def test_no_backoff_by_default(self, monkeypatch):
        naps = []
        monkeypatch.setattr(scheduler_module, "_sleep", naps.append)
        plan = FaultPlan(rules=(
            FaultRule(site="scheduler.job", kind="error", times=1),))
        with faults_scope(FaultInjector(plan)):
            result = CampaignScheduler(
                retries=1, job_runner=_stub_runner).run(_jobs(1), name="r")
        assert result.outcomes[0].status == "ok"
        assert naps == []

    def test_exhausted_retries_keep_every_attempt(self):
        plan = FaultPlan(rules=(
            FaultRule(site="scheduler.job", kind="error", times=0),))
        with faults_scope(FaultInjector(plan)):
            result = CampaignScheduler(
                retries=2, job_runner=_stub_runner).run(_jobs(1), name="r")
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert len(outcome.errors) == 3
        assert "injected fault" in outcome.error


class TestTornWrites:
    def test_injected_torn_store_write_never_fails_the_campaign(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        plan = FaultPlan(rules=(
            FaultRule(site="store.append", kind="torn_write", after=1),))
        with faults_scope(FaultInjector(plan)):
            result = CampaignScheduler(
                store=store, job_runner=_stub_runner, resume=False,
            ).run(_jobs(3), name="torn")
        assert result.failed == 0  # sink faults are isolated from outcomes
        # The torn record is lost; the others survive a tolerant read.
        with pytest.warns(RuntimeWarning, match="torn/corrupt"):
            records = store.load()
        assert len(records) == 2
        with pytest.raises(ReproError):
            store.load(strict=True)

    def test_torn_cache_write_quarantined_on_next_get(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        digest = "ab" + "0" * 62
        plan = FaultPlan(rules=(
            FaultRule(site="cache.put", kind="cache_corrupt"),))
        with faults_scope(FaultInjector(plan)):
            cache.put(digest, {"status": "ok", "big": list(range(50))})
        assert cache.get(digest) is None  # corrupt -> miss
        assert cache.stats.quarantined == 1
        assert cache.path_for(digest).with_name(
            cache.path_for(digest).name + QUARANTINE_SUFFIX).exists()
        # The slot refills cleanly once the fault is gone.
        cache.put(digest, {"status": "ok"})
        assert cache.get(digest) == {"status": "ok"}


class TestFailurePolicies:
    def _failing_plan(self, times=0):
        return FaultPlan(rules=(
            FaultRule(site="scheduler.job", kind="error", times=times,
                      match="alexnet[bs2]"),))

    def test_isolate_records_and_continues(self):
        with faults_scope(FaultInjector(self._failing_plan())):
            result = CampaignScheduler(
                job_runner=_stub_runner, on_failure="isolate",
            ).run(_jobs(3), name="iso")
        assert result.failed == 1
        assert result.executed == 2

    def test_fail_fast_skips_unstarted_jobs(self):
        with faults_scope(FaultInjector(self._failing_plan())):
            result = CampaignScheduler(
                job_runner=_stub_runner, on_failure="fail_fast",
            ).run(_jobs(4), name="ff")
        statuses = [o.status for o in result.outcomes]
        assert statuses[0] == "ok"
        assert statuses[1] == "failed"
        assert statuses[2:] == ["skipped", "skipped"]
        assert all("aborted" in o.error for o in result.outcomes[2:])
        assert result.skipped == 2

    def test_degrade_reruns_without_tools(self, tmp_path):
        calls = []

        def runner(payload):
            calls.append(payload)
            if payload.get("tools"):
                raise RuntimeError("tool exploded")
            return _stub_runner(payload)

        jobs = [ProfileSpec(model="alexnet", iterations=1,
                            tools=("kernel_frequency",))]
        store = ResultStore(tmp_path / "results.jsonl")
        result = CampaignScheduler(
            job_runner=runner, on_failure="degrade",
            store=store, cache=ResultCache(tmp_path / "cache"),
        ).run(jobs, name="deg")
        outcome = result.outcomes[0]
        assert outcome.status == "degraded"
        assert outcome.ok
        assert result.degraded == 1
        assert "tool exploded" in outcome.error
        record = outcome.record
        assert record["status"] == "degraded"
        assert record["degraded_from"]["tools"] == ["kernel_frequency"]
        # The real (tooled) job identity is preserved in the record.
        assert record["job"]["tools"] == ["kernel_frequency"]
        # The fallback really ran without tools.
        assert calls[-1].get("tools") in ((), [], None)
        # Degraded results are stored but never cached under the digest, and
        # never treated as resumable: a rerun tries the real job again.
        assert ResultCache(tmp_path / "cache").get(outcome.digest) is None
        rerun = CampaignScheduler(
            job_runner=_stub_runner, store=store,
        ).run(jobs, name="deg2")
        assert rerun.outcomes[0].status == "ok"

    def test_degrade_keeps_failure_when_fallback_also_fails(self):
        def runner(payload):
            raise RuntimeError("always broken")

        result = CampaignScheduler(
            job_runner=runner, on_failure="degrade",
        ).run(_jobs(1), name="deg3")
        outcome = result.outcomes[0]
        assert outcome.status == "failed"
        assert "degraded fallback also failed" in outcome.error


class TestRunnerFaultSite:
    def test_runner_execute_site_fires_in_real_execution(self):
        plan = FaultPlan(rules=(
            FaultRule(site="runner.execute", kind="error"),))
        with faults_scope(FaultInjector(plan)):
            result = CampaignScheduler(retries=1).run(_jobs(1), name="real")
        # First attempt hits the injected fault, the retry succeeds.
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert "injected fault at runner.execute" in str(outcome.errors[0]["error"])
