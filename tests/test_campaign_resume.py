"""Crash-resume drills: SIGKILL'd workers, stale-lease takeover, merged reports.

These tests run real campaigns in subprocesses, kill them mid-run with the
fault harness (``PASTA_FAULTS`` crash rules — ``os.kill(SIGKILL)``, nothing
flushed, no handler), and assert that a rerun over the same campaign
directory simulates only the missing cells and that the merged report is
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.campaign import ResultStore, rollup, snapshot_status
from repro.obs.sink import read_records

#: A 6-cell grid of cheap alexnet jobs (tools x analysis models).
SPEC = {
    "name": "drill",
    "models": ["alexnet"],
    "tools": ["kernel_frequency", "memory_characteristics",
              ["kernel_frequency", "memory_characteristics"]],
    "analysis_models": ["gpu_resident", "cpu_side"],
    "iterations": 1,
    "batch_size": 1,
}
TOTAL = 6


def _run_cli(args, *, faults=None, cwd=None, timeout=120):
    """Run ``pasta campaign ...`` in a subprocess; returns the process."""
    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("PASTA_FAULTS", None)
    if faults is not None:
        env["PASTA_FAULTS"] = json.dumps(faults)
    body = (
        "from repro.commands import main\n"
        f"raise SystemExit(main({['campaign', *args]!r}))\n"
    )
    return subprocess.run(
        [sys.executable, "-c", body], env=env, cwd=cwd,
        capture_output=True, text=True, timeout=timeout,
    )


def _campaign_dirs(tmp_path, name):
    root = tmp_path / name
    root.mkdir()
    spec_path = root / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    return {
        "spec": str(spec_path),
        "cache": str(root / "cache"),
        "store": str(root / "results.jsonl"),
        "leases": str(root / "leases"),
        "status": str(root / "status"),
    }


def _run_args(dirs, *extra):
    return [
        "run", dirs["spec"], "--cache-dir", dirs["cache"],
        "--store", dirs["store"], "--json", *extra,
    ]


def _report(store_path):
    """The merged campaign report: canonical JSON of the rollup tables."""
    latest = list(ResultStore(store_path).latest_by_digest().values())
    ok = [r for r in latest if r.get("status") == "ok"]
    assert len(ok) == TOTAL
    return json.dumps(
        {"by_model": rollup(ok, by="model"),
         "by_analysis_model": rollup(ok, by="analysis_model")},
        sort_keys=True,
    )


def _uninterrupted_report(tmp_path):
    dirs = _campaign_dirs(tmp_path, "baseline")
    proc = _run_cli(_run_args(dirs))
    assert proc.returncode == 0, proc.stderr
    return _report(dirs["store"])


class TestCrashResume:
    def test_sigkill_mid_campaign_then_resume_runs_only_missing_cells(self, tmp_path):
        dirs = _campaign_dirs(tmp_path, "crash")
        crashed = _run_cli(
            _run_args(dirs),
            faults={"rules": [
                {"site": "runner.execute", "kind": "crash", "after": 3}]},
        )
        # SIGKILL, not a python exception: no summary, no cleanup ran.
        assert crashed.returncode == -signal.SIGKILL, crashed.stderr
        survivors = ResultStore(dirs["store"]).latest_by_digest()
        assert len(survivors) == 3

        resumed = _run_cli(_run_args(dirs))
        assert resumed.returncode == 0, resumed.stderr
        summary = json.loads(resumed.stdout)
        assert summary["total"] == TOTAL
        # Only the cells the kill stole are simulated; the rest resume.
        assert summary["executed"] == TOTAL - 3
        assert summary["cached"] == 3
        assert summary["failed"] == 0

        # A further rerun re-simulates nothing at all.
        rerun = _run_cli(_run_args(dirs))
        assert rerun.returncode == 0, rerun.stderr
        summary = json.loads(rerun.stdout)
        assert summary["executed"] == 0
        assert summary["cached"] == TOTAL

        # The merged report is byte-identical to an uninterrupted run's.
        assert _report(dirs["store"]) == _uninterrupted_report(tmp_path)

    def test_resume_works_from_store_alone_without_cache(self, tmp_path):
        dirs = _campaign_dirs(tmp_path, "nocache")
        crashed = _run_cli(
            _run_args(dirs, "--no-cache"),
            faults={"rules": [
                {"site": "runner.execute", "kind": "crash", "after": 2}]},
        )
        assert crashed.returncode == -signal.SIGKILL, crashed.stderr
        resumed = _run_cli(_run_args(dirs, "--no-cache"))
        assert resumed.returncode == 0, resumed.stderr
        summary = json.loads(resumed.stdout)
        assert summary["executed"] == TOTAL - 2
        assert summary["cached"] == 2

    def test_no_resume_flag_resimulates_everything(self, tmp_path):
        dirs = _campaign_dirs(tmp_path, "noresume")
        first = _run_cli(_run_args(dirs, "--no-cache"))
        assert first.returncode == 0, first.stderr
        again = _run_cli(_run_args(dirs, "--no-cache", "--no-resume"))
        assert again.returncode == 0, again.stderr
        summary = json.loads(again.stdout)
        assert summary["executed"] == TOTAL
        assert summary["cached"] == 0


class TestTwoWorkerTakeover:
    def test_killed_workers_shard_is_taken_over_and_report_matches(self, tmp_path):
        dirs = _campaign_dirs(tmp_path, "fabric")
        lease_args = ["--lease-dir", dirs["leases"], "--lease-ttl", "0.5"]

        # Worker A: primary for shard 0, SIGKILL'd after one completed job.
        # It dies holding unreleased leases on the rest of its shard.
        worker_a = _run_cli(
            _run_args(dirs, "--workers", "0/2", *lease_args),
            faults={"rules": [
                {"site": "runner.execute", "kind": "worker_kill", "after": 1}]},
        )
        assert worker_a.returncode == -signal.SIGKILL, worker_a.stderr
        leftovers = list(Path(dirs["leases"]).glob("*.lease"))
        assert leftovers, "the killed worker should leave stale leases behind"
        done_before = len(ResultStore(dirs["store"]).latest_by_digest())
        assert done_before >= 1

        # Worker B: primary for shard 1.  It must finish its own shard, wait
        # out A's lease ttl, take the stale leases over, and complete the
        # whole campaign — without re-simulating anything A finished.
        worker_b = _run_cli(
            _run_args(dirs, "--workers", "1/2", "--status", dirs["status"],
                      *lease_args),
        )
        assert worker_b.returncode == 0, worker_b.stderr
        summary = json.loads(worker_b.stdout)
        assert summary["total"] == TOTAL
        assert summary["failed"] == 0
        assert summary["cached"] == done_before
        assert summary["executed"] == TOTAL - done_before
        assert summary["stolen"] >= 1

        # The takeover is visible on the progress stream.
        snapshot = snapshot_status(
            read_records(Path(dirs["status"]) / "status.jsonl"))
        assert snapshot["stolen"] >= 1
        assert snapshot["leases"].get("takeover", 0) >= 1

        # All leases were released once the campaign completed.
        assert list(Path(dirs["leases"]).glob("*.lease")) == []

        # Zero re-simulation on a third pass, and a byte-identical report.
        worker_c = _run_cli(_run_args(dirs))
        assert worker_c.returncode == 0, worker_c.stderr
        summary = json.loads(worker_c.stdout)
        assert summary["executed"] == 0
        assert summary["cached"] == TOTAL
        assert _report(dirs["store"]) == _uninterrupted_report(tmp_path)


class TestFaultedCampaignRecovers:
    def test_every_recoverable_fault_mode_in_one_campaign(self, tmp_path):
        # error (retried), slow (tolerated), torn store write (isolated) and
        # a corrupted cache entry (quarantined) — the campaign still reports
        # zero failures.
        dirs = _campaign_dirs(tmp_path, "chaos")
        proc = _run_cli(
            _run_args(dirs, "--retries", "2", "--retry-backoff", "0.01"),
            faults={"seed": 11, "rules": [
                {"site": "scheduler.job", "kind": "error", "times": 1},
                {"site": "runner.execute", "kind": "slow", "times": 1,
                 "delay_s": 0.05},
                {"site": "store.append", "kind": "torn_write", "times": 1},
                {"site": "cache.put", "kind": "cache_corrupt", "times": 1},
            ]},
        )
        assert proc.returncode == 0, proc.stderr
        summary = json.loads(proc.stdout)
        assert summary["failed"] == 0
        assert summary["total"] == TOTAL
        assert summary["backoff_s"] > 0

        # The torn record is skipped on read; a resume fills the hole (one
        # record lost to the tear, one cache entry corrupted -> at most two
        # cells re-simulate; the rest resume).
        with pytest.warns(RuntimeWarning):
            resumable = [
                r for r in ResultStore(dirs["store"]).load()
                if r.get("status") == "ok"
            ]
        assert len(resumable) >= TOTAL - 1
        resumed = _run_cli(_run_args(dirs))
        assert resumed.returncode == 0, resumed.stderr
        summary = json.loads(resumed.stdout)
        assert summary["failed"] == 0
        assert summary["executed"] <= 2
        assert summary["cached"] >= TOTAL - 2
        assert _report(dirs["store"]) == _uninterrupted_report(tmp_path)
