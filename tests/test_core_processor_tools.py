"""Tests for the event processor, dispatch unit, tool template and registry."""

from __future__ import annotations

import pytest

from repro.errors import AnnotationError, ToolError
from repro.core.annotations import RangeFilter
from repro.core.events import (
    EventCategory,
    KernelArgumentInfo,
    KernelLaunchEvent,
    KernelMemoryProfile,
    RegionEvent,
    TensorAllocEvent,
)
from repro.core.processor import PastaEventProcessor
from repro.core.registry import (
    PASTA_TOOL_ENV,
    create_tool,
    register_tool,
    registered_tools,
    select_tool,
)
from repro.core.tool import PastaTool


class CountingTool(PastaTool):
    """Counts events per category; subscribes to everything."""

    tool_name = "counting_tool"

    def __init__(self) -> None:
        super().__init__()
        self.by_category: dict[EventCategory, int] = {}

    def handle_event(self, event) -> None:  # type: ignore[override]
        self.by_category[event.category] = self.by_category.get(event.category, 0) + 1
        super().handle_event(event)


class KernelOnlyTool(PastaTool):
    tool_name = "kernel_only_tool"
    subscribed_categories = frozenset({EventCategory.KERNEL_LAUNCH})

    def __init__(self) -> None:
        super().__init__()
        self.kernels: list[str] = []

    def on_kernel_launch(self, event: KernelLaunchEvent) -> None:
        self.kernels.append(event.kernel_name)


def make_launch_event(grid_index=0, arguments=(), name="k", accesses=0):
    return KernelLaunchEvent(
        kernel_name=name,
        launch_id=grid_index + 1,
        grid_index=grid_index,
        total_memory_accesses=accesses,
        arguments=tuple(arguments),
    )


class TestDispatchAndSubscriptions:
    def test_events_reach_subscribed_tools_only(self):
        processor = PastaEventProcessor(enable_gpu_preprocessing=False)
        counting, kernel_only = CountingTool(), KernelOnlyTool()
        processor.register_tool(counting)
        processor.register_tool(kernel_only)
        processor.submit(make_launch_event())
        processor.submit(TensorAllocEvent(nbytes=4))
        assert counting.by_category[EventCategory.KERNEL_LAUNCH] == 1
        assert counting.by_category[EventCategory.TENSOR_ALLOC] == 1
        assert kernel_only.kernels == ["k"]
        assert kernel_only.events_received == 1

    def test_overridden_hooks_are_called(self):
        tool = KernelOnlyTool()
        tool.handle_event(make_launch_event(name="special"))
        assert tool.kernels == ["special"]

    def test_unregister_tool(self):
        processor = PastaEventProcessor(enable_gpu_preprocessing=False)
        tool = KernelOnlyTool()
        processor.register_tool(tool)
        processor.unregister_tool(tool)
        processor.submit(make_launch_event())
        assert tool.kernels == []

    def test_default_report(self):
        tool = CountingTool()
        assert tool.report()["tool"] == "counting_tool"


class TestGpuPreprocessing:
    def test_kernel_memory_profile_is_synthesised(self):
        processor = PastaEventProcessor(enable_gpu_preprocessing=True)
        received: list[KernelMemoryProfile] = []

        class ProfileTool(PastaTool):
            tool_name = "profile_tool"
            subscribed_categories = frozenset({EventCategory.KERNEL_MEMORY_PROFILE})

            def on_kernel_memory_profile(self, event):
                received.append(event)

        processor.register_tool(ProfileTool())
        args = (
            KernelArgumentInfo(address=0x1000, size=1000, referenced_bytes=500, access_count=100),
            KernelArgumentInfo(address=0x9000, size=2000, referenced_bytes=0, access_count=0),
        )
        processor.submit(make_launch_event(arguments=args, accesses=100))
        assert len(received) == 1
        profile = received[0]
        assert profile.footprint_bytes == 3000
        assert profile.working_set_bytes == 500
        assert profile.total_accesses == 100
        # Only the referenced argument appears in the access-count map.
        assert profile.accessed_object_count == 1

    def test_address_resolver_attributes_to_objects(self):
        objects = {0x1000: (42, 4096)}
        processor = PastaEventProcessor(
            address_resolver=lambda addr: objects.get(addr),
            enable_gpu_preprocessing=True,
        )
        received = []

        class ProfileTool(PastaTool):
            tool_name = "profile_tool2"
            subscribed_categories = frozenset({EventCategory.KERNEL_MEMORY_PROFILE})

            def on_kernel_memory_profile(self, event):
                received.append(event)

        processor.register_tool(ProfileTool())
        args = (KernelArgumentInfo(address=0x1000, size=4096, referenced_bytes=4096, access_count=10),)
        processor.submit(make_launch_event(arguments=args))
        assert list(received[0].object_access_counts) == [42]
        assert processor.global_access_map.counts[42] == 10

    def test_no_profile_without_interested_tools(self):
        processor = PastaEventProcessor(enable_gpu_preprocessing=True)
        processor.register_tool(KernelOnlyTool())
        processor.submit(make_launch_event())
        assert processor.gpu_preprocessed_kernels == 0


class TestRangeFilter:
    def test_grid_window(self):
        filt = RangeFilter()
        filt.set_grid_window(2, 4)
        assert not filt.in_range(0)
        assert filt.in_range(2)
        assert filt.in_range(4)
        assert not filt.in_range(5)

    def test_invalid_window_rejected(self):
        with pytest.raises(AnnotationError):
            RangeFilter().set_grid_window(5, 2)

    def test_from_environment(self):
        filt = RangeFilter.from_environment({"START_GRID_ID": "10", "END_GRID_ID": "20"})
        assert filt.start_grid_id == 10 and filt.end_grid_id == 20
        assert filt.in_range(15)
        assert not filt.in_range(25)

    def test_annotation_regions_gate_analysis(self):
        filt = RangeFilter()
        assert filt.in_range(0)          # no annotations used yet: everything analysed
        filt.open_region("layer")
        assert filt.in_range(1)
        filt.close_region()
        assert not filt.in_range(2)      # annotations used, currently outside a region

    def test_unbalanced_stop_raises(self):
        with pytest.raises(AnnotationError):
            RangeFilter().close_region()

    def test_processor_applies_filter_to_kernels(self):
        filt = RangeFilter()
        filt.set_grid_window(1, 2)
        processor = PastaEventProcessor(range_filter=filt, enable_gpu_preprocessing=False)
        tool = KernelOnlyTool()
        processor.register_tool(tool)
        for index in range(4):
            processor.submit(make_launch_event(grid_index=index, name=f"k{index}"))
        assert tool.kernels == ["k1", "k2"]
        assert processor.events_filtered == 2

    def test_processor_region_events_toggle_filter(self):
        processor = PastaEventProcessor(enable_gpu_preprocessing=False)
        tool = KernelOnlyTool()
        processor.register_tool(tool)
        processor.submit(make_launch_event(grid_index=0, name="before"))
        processor.submit(RegionEvent(label="roi", starting=True))
        processor.submit(make_launch_event(grid_index=1, name="inside"))
        processor.submit(RegionEvent(label="roi", starting=False))
        processor.submit(make_launch_event(grid_index=2, name="after"))
        # "before" was analysed (no annotations yet); "after" is filtered out.
        assert tool.kernels == ["before", "inside"]


class TestToolRegistry:
    def test_builtin_tools_are_registered(self):
        import repro.tools  # noqa: F401  (import triggers registration)

        names = registered_tools()
        assert "kernel_frequency" in names
        assert "memory_characteristics" in names
        assert "hotness" in names

    def test_create_tool_by_name(self):
        import repro.tools  # noqa: F401

        tool = create_tool("kernel_frequency")
        assert tool.tool_name == "kernel_frequency"

    def test_unknown_tool_raises(self):
        with pytest.raises(ToolError):
            create_tool("definitely_not_registered")

    def test_duplicate_registration_rejected(self):
        import repro.tools  # noqa: F401

        with pytest.raises(ToolError):
            register_tool("kernel_frequency", CountingTool)

    def test_select_tool_via_environment(self):
        import repro.tools  # noqa: F401

        tool = select_tool(env={PASTA_TOOL_ENV: "memory_characteristics"})
        assert tool.tool_name == "memory_characteristics"
        with pytest.raises(ToolError):
            select_tool(env={})
