"""Tests for the unified event model and the PASTA event handler."""

from __future__ import annotations

import pytest

from repro.errors import HandlerError
from repro.core.events import (
    COARSE_CATEGORIES,
    EventCategory,
    FINE_GRAINED_CATEGORIES,
    FRAMEWORK_CATEGORIES,
    KernelLaunchEvent,
    MemcpyEvent,
    MemoryAllocEvent,
    MemoryFreeEvent,
    OperatorEndEvent,
    OperatorStartEvent,
    RuntimeApiEvent,
    SynchronizationEvent,
    TensorAllocEvent,
    TensorFreeEvent,
)
from repro.core.handler import PastaEventHandler
from repro.dlframework import ops
from repro.gpusim.device import A100, MiB
from repro.gpusim.kernel import GridConfig, KernelArgument
from repro.gpusim.runtime import MemcpyKind, create_runtime
from repro.vendors import ComputeSanitizerBackend, RocprofilerBackend


def make_handler_with_sink():
    events = []
    handler = PastaEventHandler(sink=events.append)
    return handler, events


class TestEventTaxonomy:
    def test_categories_are_partitioned(self):
        # Coarse, fine-grained and framework categories do not overlap.
        assert not (COARSE_CATEGORIES & FINE_GRAINED_CATEGORIES)
        assert not (COARSE_CATEGORIES & FRAMEWORK_CATEGORIES)
        assert not (FINE_GRAINED_CATEGORIES & FRAMEWORK_CATEGORIES)

    def test_every_event_class_sets_its_category(self):
        assert RuntimeApiEvent().category is EventCategory.RUNTIME_API
        assert KernelLaunchEvent().category is EventCategory.KERNEL_LAUNCH
        assert MemoryAllocEvent().category is EventCategory.MEMORY_ALLOC
        assert MemoryFreeEvent().category is EventCategory.MEMORY_FREE
        assert MemcpyEvent().category is EventCategory.MEMCPY
        assert SynchronizationEvent().category is EventCategory.SYNCHRONIZATION
        assert OperatorStartEvent().category is EventCategory.OPERATOR_START
        assert OperatorEndEvent().category is EventCategory.OPERATOR_END
        assert TensorAllocEvent().category is EventCategory.TENSOR_ALLOC
        assert TensorFreeEvent().category is EventCategory.TENSOR_FREE

    def test_event_ids_are_unique(self):
        a, b = RuntimeApiEvent(), RuntimeApiEvent()
        assert a.event_id != b.event_id

    def test_kernel_launch_total_threads(self):
        event = KernelLaunchEvent(grid=(4, 2, 1), block=(128, 1, 1))
        assert event.total_threads == 1024


class TestVendorTranslation:
    def test_runtime_activity_becomes_normalised_events(self):
        runtime = create_runtime(A100)
        backend = ComputeSanitizerBackend()
        backend.attach(runtime)
        handler, events = make_handler_with_sink()
        handler.attach_vendor_backend(backend)

        obj = runtime.malloc(1 * MiB)
        runtime.memcpy(4096, MemcpyKind.HOST_TO_DEVICE)
        runtime.launch_kernel(
            "k", GridConfig.for_elements(256),
            arguments=[KernelArgument(address=obj.address, size=obj.size, accesses_per_byte=0.01)],
        )
        runtime.synchronize()
        runtime.free(obj)

        categories = [e.category for e in events]
        assert EventCategory.MEMORY_ALLOC in categories
        assert EventCategory.MEMORY_FREE in categories
        assert EventCategory.MEMCPY in categories
        assert EventCategory.KERNEL_LAUNCH in categories
        assert EventCategory.SYNCHRONIZATION in categories
        assert EventCategory.RUNTIME_API in categories

    def test_kernel_launch_metadata_extraction(self):
        runtime = create_runtime(A100)
        backend = ComputeSanitizerBackend()
        backend.attach(runtime)
        handler, events = make_handler_with_sink()
        handler.attach_vendor_backend(backend)
        obj = runtime.malloc(1 * MiB)
        runtime.launch_kernel(
            "my_kernel", GridConfig.for_elements(1024),
            arguments=[KernelArgument(address=obj.address, size=obj.size,
                                      accessed_fraction=0.5, accesses_per_byte=1.0)],
        )
        launches = [e for e in events if isinstance(e, KernelLaunchEvent)]
        assert len(launches) == 1
        event = launches[0]
        assert event.kernel_name == "my_kernel"
        assert event.grid[0] == 4
        assert event.working_set_bytes == obj.size // 2
        assert event.memory_footprint_bytes == obj.size
        assert len(event.arguments) == 1
        assert event.grid_index == 0

    def test_grid_index_increments_per_device(self):
        runtime = create_runtime(A100)
        backend = ComputeSanitizerBackend()
        backend.attach(runtime)
        handler, events = make_handler_with_sink()
        handler.attach_vendor_backend(backend)
        for _ in range(3):
            runtime.launch_kernel("k", GridConfig.for_elements(64))
        launches = [e for e in events if isinstance(e, KernelLaunchEvent)]
        assert [e.grid_index for e in launches] == [0, 1, 2]

    def test_cross_vendor_events_are_uniform(self, mi300x_runtime):
        """AMD callbacks normalise into the same event classes as NVIDIA ones."""
        backend = RocprofilerBackend()
        backend.attach(mi300x_runtime)
        handler, events = make_handler_with_sink()
        handler.attach_vendor_backend(backend)
        obj = mi300x_runtime.malloc(1 * MiB)
        mi300x_runtime.launch_kernel("k", GridConfig.for_elements(64))
        mi300x_runtime.free(obj)
        categories = {e.category for e in events}
        assert EventCategory.MEMORY_ALLOC in categories
        assert EventCategory.MEMORY_FREE in categories
        assert EventCategory.KERNEL_LAUNCH in categories
        assert all(e.source == "rocprofiler" for e in events)

    def test_detach_stops_translation(self):
        runtime = create_runtime(A100)
        backend = ComputeSanitizerBackend()
        backend.attach(runtime)
        handler, events = make_handler_with_sink()
        handler.attach_vendor_backend(backend)
        runtime.malloc(4096)
        count = len(events)
        handler.detach_vendor_backend(backend)
        runtime.malloc(4096)
        assert len(events) == count


class TestFrameworkTranslation:
    def test_tensor_events_normalise_sign_convention(self, a100_ctx):
        handler, events = make_handler_with_sink()
        handler.attach_framework(a100_ctx.callbacks)
        t = a100_ctx.alloc((1024,), name="x")
        a100_ctx.free(t)
        allocs = [e for e in events if isinstance(e, TensorAllocEvent)]
        frees = [e for e in events if isinstance(e, TensorFreeEvent)]
        assert len(allocs) == 1 and len(frees) == 1
        # Reclamations are reported with a positive size and an explicit type.
        assert frees[0].nbytes > 0
        assert frees[0].nbytes == allocs[0].nbytes

    def test_operator_events_carry_scope_and_python_stack(self, a100_ctx):
        handler, events = make_handler_with_sink()
        handler.attach_framework(a100_ctx.callbacks)
        x = a100_ctx.alloc((4, 16))
        w = a100_ctx.alloc((8, 16))
        with a100_ctx.module_scope("encoder.layer.0"):
            ops.linear(a100_ctx, x, w, None)
        starts = [e for e in events if isinstance(e, OperatorStartEvent)]
        ends = [e for e in events if isinstance(e, OperatorEndEvent)]
        assert starts and ends
        assert starts[0].name == "aten::linear"
        assert starts[0].scope == "encoder.layer.0"
        assert any("forward" in frame for frame in starts[0].python_stack)
        assert ends[0].kernel_count >= 1


class TestHandlerConfiguration:
    def test_missing_sink_raises(self):
        handler = PastaEventHandler()
        with pytest.raises(HandlerError):
            handler.emit(RuntimeApiEvent(api_name="cudaMalloc"))

    def test_category_filtering(self):
        handler, events = make_handler_with_sink()
        handler.enable_category(EventCategory.RUNTIME_API, enabled=False)
        handler.emit(RuntimeApiEvent(api_name="cudaMalloc"))
        handler.emit(SynchronizationEvent())
        assert len(events) == 1
        assert handler.events_dropped == 1
        assert EventCategory.RUNTIME_API not in handler.enabled_categories()

    def test_region_emission(self):
        handler, events = make_handler_with_sink()
        handler.emit_region("layer0", starting=True)
        handler.emit_region("layer0", starting=False)
        assert events[0].category is EventCategory.REGION_START
        assert events[1].category is EventCategory.REGION_STOP
