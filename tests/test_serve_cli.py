"""End-to-end CLI drills for the serve surface, as real subprocesses.

Everything here exercises the shipped entry points the way an operator
would: ``pasta serve`` booted as its own process (ephemeral port scraped
from the machine-readable boot line), ``pasta submit`` / ``pasta jobs``
talking to it over HTTP, and — the headline drill — ``kill -9`` of a
daemon with queued work followed by a restart over the same ``--data-dir``
that resumes the queue and keeps every finished digest cached.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional

import pytest

ROOT = Path(__file__).resolve().parents[1]

_ENTRY = "import sys; from repro.commands import main; sys.exit(main())"

_BOOT_RE = re.compile(
    r"^pasta serve listening on (?P<url>http://\S+) "
    r"\(data: .*, workers: \d+, resumed: (?P<resumed>\d+)\)$"
)

#: Keeps every simulated job slow enough to still be in flight when the
#: daemon is killed (times=0 → every call through ``runner.execute``).
SLOW_FAULTS = json.dumps({
    "seed": 0,
    "rules": [
        {"site": "runner.execute", "kind": "slow", "times": 0, "delay_s": 2.0},
    ],
})


def _env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    env.pop("PASTA_FAULTS", None)
    env.update(extra)
    return env


def _cli(*args: str) -> list[str]:
    return [sys.executable, "-c", _ENTRY, *args]


def run_cli(*args: str, env: Optional[dict[str, str]] = None,
            timeout: float = 60.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        _cli(*args), capture_output=True, text=True,
        env=env or _env(), timeout=timeout, cwd=ROOT,
    )


def jsonl(stdout: str) -> list[dict]:
    return [json.loads(line) for line in stdout.splitlines() if line.strip()]


class Daemon:
    """A ``pasta serve`` subprocess plus its scraped boot facts."""

    def __init__(self, data_dir: Path, *, workers: int = 1,
                 env: Optional[dict[str, str]] = None) -> None:
        self.proc = subprocess.Popen(
            _cli("serve", "--port", "0", "--workers", str(workers),
                 "--data-dir", str(data_dir)),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env or _env(), cwd=ROOT,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline().strip()
        match = _BOOT_RE.match(line)
        assert match, f"unexpected boot line: {line!r}"
        self.url = match.group("url")
        self.resumed = int(match.group("resumed"))

    def kill9(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)
        assert self.proc.returncode == -signal.SIGKILL

    def interrupt(self) -> int:
        self.proc.send_signal(signal.SIGINT)
        return self.proc.wait(timeout=10)

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


@pytest.fixture
def spec_path(tmp_path: Path) -> Path:
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(
        {"model": "alexnet", "tools": ["hotness"], "iterations": 1}
    ))
    return path


def test_submit_round_trip_and_cache_hit(tmp_path: Path, spec_path: Path) -> None:
    daemon = Daemon(tmp_path / "serve")
    try:
        first = run_cli("submit", str(spec_path), "--url", daemon.url)
        assert first.returncode == 0, first.stderr
        records = jsonl(first.stdout)
        assert [r["type"] for r in records] == ["job", "job", "result", "job"]
        final = records[-1]
        assert final["state"] == "done"
        assert final["cache_hit"] is False
        result = records[2]
        assert result["record"]["status"] == "ok"
        assert "hotness" in result["record"]["reports"]

        # Identical resubmission is served straight from the cache.
        second = run_cli("submit", str(spec_path), "--url", daemon.url)
        assert second.returncode == 0, second.stderr
        rerun = jsonl(second.stdout)
        assert rerun[-1]["state"] == "done"
        assert rerun[-1]["cache_hit"] is True
        assert rerun[-1]["digest"] == final["digest"]
        # ...and the result bytes are the ones the first run produced.
        assert rerun[2]["record"] == result["record"]
    finally:
        daemon.close()


def test_jobs_subcommands(tmp_path: Path, spec_path: Path) -> None:
    daemon = Daemon(tmp_path / "serve")
    try:
        submitted = run_cli("submit", str(spec_path), "--url", daemon.url,
                            "--no-wait")
        assert submitted.returncode == 0, submitted.stderr
        job = jsonl(submitted.stdout)[0]
        job_id = job["job_id"]

        streamed = run_cli("jobs", "stream", job_id, "--url", daemon.url)
        assert streamed.returncode == 0, streamed.stderr
        assert jsonl(streamed.stdout)[-1]["state"] == "done"

        status = run_cli("jobs", "status", job_id, "--url", daemon.url)
        assert jsonl(status.stdout)[0]["state"] == "done"

        listing = run_cli("jobs", "list", "--url", daemon.url, "--all")
        ids = [r["job_id"] for r in jsonl(listing.stdout)]
        assert job_id in ids

        health = run_cli("jobs", "health", "--url", daemon.url)
        record = jsonl(health.stdout)[0]
        assert record["type"] == "health"
        assert record["executed"] == 1
    finally:
        daemon.close()


def test_sigint_is_a_clean_shutdown(tmp_path: Path) -> None:
    daemon = Daemon(tmp_path / "serve")
    try:
        time.sleep(0.2)  # let the child settle into its serve loop
        assert daemon.interrupt() == 0
    finally:
        daemon.close()


def test_kill9_restart_resumes_queue_and_cache(tmp_path: Path) -> None:
    """The ISSUE's crash drill: SIGKILL with queued jobs, restart, resume."""
    data = tmp_path / "serve"
    specs = []
    for iterations in (1, 2, 3):
        path = tmp_path / f"spec-{iterations}.json"
        path.write_text(json.dumps(
            {"model": "alexnet", "tools": ["hotness"],
             "iterations": iterations}
        ))
        specs.append(path)

    # First daemon runs with a fault plan that makes every simulation slow,
    # so all three submissions are still queued/running at kill time.
    slow = Daemon(data, env=_env(PASTA_FAULTS=SLOW_FAULTS))
    job_ids = []
    try:
        assert slow.resumed == 0
        for path in specs:
            out = run_cli("submit", str(path), "--url", slow.url, "--no-wait")
            assert out.returncode == 0, out.stderr
            job_ids.append(jsonl(out.stdout)[0]["job_id"])
        slow.kill9()
    finally:
        slow.close()

    # Restart over the same data dir, without the fault plan: the boot line
    # reports the resumed queue, and every accepted job still completes.
    fresh = Daemon(data)
    try:
        assert fresh.resumed == len(job_ids)
        for job_id in job_ids:
            streamed = run_cli("jobs", "stream", job_id, "--url", fresh.url)
            assert streamed.returncode == 0, streamed.stderr
            assert jsonl(streamed.stdout)[-1]["state"] == "done"

        health = jsonl(run_cli("jobs", "health", "--url", fresh.url).stdout)[0]
        executed_after_resume = health["executed"]
        assert executed_after_resume == len(job_ids)

        # Finished digests survived the crash: identical resubmissions are
        # pure cache hits — the daemon simulates nothing new.
        for path in specs:
            out = run_cli("submit", str(path), "--url", fresh.url)
            assert out.returncode == 0, out.stderr
            assert jsonl(out.stdout)[-1]["cache_hit"] is True
        health = jsonl(run_cli("jobs", "health", "--url", fresh.url).stdout)[0]
        assert health["executed"] == executed_after_resume
    finally:
        fresh.close()


def test_restart_after_clean_finish_resumes_nothing(
    tmp_path: Path, spec_path: Path
) -> None:
    data = tmp_path / "serve"
    first = Daemon(data)
    try:
        done = run_cli("submit", str(spec_path), "--url", first.url)
        assert done.returncode == 0
        first.kill9()
    finally:
        first.close()

    second = Daemon(data)
    try:
        assert second.resumed == 0
        rerun = run_cli("submit", str(spec_path), "--url", second.url)
        assert jsonl(rerun.stdout)[-1]["cache_hit"] is True
    finally:
        second.close()


def test_submit_bad_spec_file(tmp_path: Path) -> None:
    missing = run_cli("submit", str(tmp_path / "nope.json"),
                      "--url", "http://127.0.0.1:1")
    assert missing.returncode != 0
    assert "cannot read spec file" in missing.stderr

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    out = run_cli("submit", str(garbled), "--url", "http://127.0.0.1:1")
    assert out.returncode != 0
    assert "not valid JSON" in out.stderr
