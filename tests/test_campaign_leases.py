"""Tests for the lease protocol and the sharded distributed fabric."""

from __future__ import annotations

import json
import time

import pytest

from repro.api import ProfileSpec
from repro.campaign import (
    CampaignScheduler,
    LeaseManager,
    ResultCache,
    ResultStore,
    shard_of,
)
from repro.campaign.leases import LEASE_SUFFIX, LeaseInfo
from repro.errors import ReproError


def _jobs(n=6):
    return [ProfileSpec(model="alexnet", batch_size=b, iterations=1)
            for b in range(1, n + 1)]


def _stub_runner(payload):
    return {"job": dict(payload), "status": "ok",
            "summary": {"total_time_ms": 1.0}, "reports": []}


class TestShardOf:
    def test_deterministic_and_in_range(self):
        digests = [j.digest("v") for j in _jobs(10)]
        for count in (1, 2, 3, 7):
            for digest in digests:
                index = shard_of(digest, count)
                assert 0 <= index < count
                assert index == shard_of(digest, count)

    def test_rejects_bad_count(self):
        with pytest.raises(ReproError, match="shard count"):
            shard_of("ab" * 32, 0)

    def test_partitions_cover_everything(self):
        digests = [j.digest("v") for j in _jobs(20)]
        shards = {0: [], 1: [], 2: []}
        for digest in digests:
            shards[shard_of(digest, 3)].append(digest)
        assert sum(len(v) for v in shards.values()) == len(digests)


class TestLeaseManager:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        digest = "d" * 64
        assert a.claim(digest) is True
        assert b.claim(digest) is False
        assert a.claim(digest) is True  # re-claim of a held lease is cheap
        info = b.holder(digest)
        assert info is not None and info.owner == "a"

    def test_release_lets_another_worker_claim(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a")
        b = LeaseManager(tmp_path, owner="b")
        digest = "d" * 64
        assert a.claim(digest)
        assert a.release(digest) is True
        assert digest not in a.held
        assert b.claim(digest) is True

    def test_heartbeat_refreshes_timestamp(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a")
        digest = "d" * 64
        a.claim(digest)
        before = a.holder(digest)
        time.sleep(0.02)
        assert a.heartbeat(digest) is True
        after = a.holder(digest)
        assert after.heartbeat_unix > before.heartbeat_unix
        assert after.claimed_unix == before.claimed_unix
        assert a.heartbeat_all() == 1

    def test_stale_lease_is_taken_over(self, tmp_path):
        dead = LeaseManager(tmp_path, owner="dead", ttl_s=0.05)
        live = LeaseManager(tmp_path, owner="live", ttl_s=0.05)
        digest = "d" * 64
        dead.claim(digest)
        # No heartbeat: the lease expires and a stealer wins it.
        time.sleep(0.1)
        assert live.claim(digest) is True
        assert live.takeovers == 1
        assert live.holder(digest).owner == "live"

    def test_fresh_lease_is_not_taken_over(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        digest = "d" * 64
        a.claim(digest)
        assert b.claim(digest) is False
        assert b.takeovers == 0

    def test_steal_stale_false_never_takes_over(self, tmp_path):
        dead = LeaseManager(tmp_path, owner="dead", ttl_s=0.01)
        polite = LeaseManager(tmp_path, owner="polite", ttl_s=0.01)
        digest = "d" * 64
        dead.claim(digest)
        time.sleep(0.05)
        assert polite.claim(digest, steal_stale=False) is False

    def test_corrupt_lease_counts_as_stale(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        digest = "d" * 64
        path = tmp_path / f"{digest}{LEASE_SUFFIX}"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"torn')  # holder died mid-write
        assert a.holder(digest) is None
        assert a.is_stale(None) is True
        assert a.claim(digest) is True

    def test_heartbeat_detects_lost_ownership(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=0.05)
        thief = LeaseManager(tmp_path, owner="thief", ttl_s=0.05)
        digest = "d" * 64
        a.claim(digest)
        time.sleep(0.1)
        assert thief.claim(digest) is True
        # a was presumed dead and stolen from; it must stop touching the lease.
        assert a.heartbeat(digest) is False
        assert digest not in a.held
        assert a.release(digest) is False
        assert thief.holder(digest).owner == "thief"

    def test_active_leases_lists_decodable_leases(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a")
        d1, d2 = "1" * 64, "2" * 64
        a.claim(d1)
        a.claim(d2)
        leases = a.active_leases()
        assert set(leases) == {d1, d2}
        assert all(isinstance(v, LeaseInfo) for v in leases.values())
        assert a.release_all() == 2
        assert a.active_leases() == {}

    def test_lease_body_is_self_describing(self, tmp_path):
        a = LeaseManager(tmp_path, owner="me")
        digest = "d" * 64
        a.claim(digest)
        data = json.loads(a.path_for(digest).read_text())
        assert data["owner"] == "me"
        assert data["digest"] == digest
        assert data["pid"] > 0
        assert data["host"]


class TestShardedCampaign:
    def test_two_workers_split_the_grid_without_overlap(self, tmp_path):
        jobs = _jobs(8)
        cache = ResultCache(tmp_path / "cache")
        store = ResultStore(tmp_path / "results.jsonl")
        executed: dict[str, list[str]] = {"w0": [], "w1": []}

        def runner_for(worker):
            def runner(payload):
                executed[worker].append(payload["model"] + str(payload["batch_size"]))
                return _stub_runner(payload)
            return runner

        results = []
        for index, worker in enumerate(("w0", "w1")):
            scheduler = CampaignScheduler(
                cache=cache, store=store,
                leases=LeaseManager(tmp_path / "leases", owner=worker, ttl_s=30.0),
                shard=(index, 2), steal=False, steal_timeout_s=0.0,
                job_runner=runner_for(worker),
            )
            results.append(scheduler.run(jobs, name="sharded"))
        # Worker 0 ran only its shard; worker 1 got the rest from shard 1
        # plus cache hits for everything worker 0 already finished.
        assert executed["w0"] and executed["w1"]
        assert not set(executed["w0"]) & set(executed["w1"])
        assert len(executed["w0"]) + len(executed["w1"]) == len(jobs)
        assert results[1].failed == 0
        assert results[1].cached == len(executed["w0"])
        # All leases were released at end of run.
        assert list((tmp_path / "leases").glob(f"*{LEASE_SUFFIX}")) == []

    def test_single_worker_steals_foreign_shard(self, tmp_path):
        jobs = _jobs(6)
        scheduler = CampaignScheduler(
            cache=ResultCache(tmp_path / "cache"),
            store=ResultStore(tmp_path / "results.jsonl"),
            leases=LeaseManager(tmp_path / "leases", ttl_s=5.0),
            shard=(0, 2), steal=True,
            job_runner=_stub_runner,
        )
        result = scheduler.run(jobs, name="solo")
        assert result.failed == 0
        assert result.total == len(jobs)
        # The cells of shard 1 had no owner: claimed and run here, marked stolen.
        assert result.stolen == sum(
            1 for job in jobs if shard_of(job.digest(scheduler.version), 2) == 1
        )

    def test_steal_timeout_gives_up_on_live_foreign_lease(self, tmp_path):
        jobs = _jobs(4)
        holder = LeaseManager(tmp_path / "leases", owner="other", ttl_s=60.0)
        scheduler = CampaignScheduler(
            job_runner=_stub_runner,
            leases=LeaseManager(tmp_path / "leases", owner="me", ttl_s=60.0),
            shard=(0, 2), steal=True, steal_timeout_s=0.2,
        )
        foreign = [j for j in jobs
                   if shard_of(j.digest(scheduler.version), 2) == 1]
        assert foreign, "grid too small: no cell landed in shard 1"
        for job in foreign:
            assert holder.claim(job.digest(scheduler.version))
        result = scheduler.run(jobs, name="blocked")
        gave_up = [o for o in result.outcomes if o.status == "failed"]
        assert len(gave_up) == len(foreign)
        assert all("leased by other" in o.error for o in gave_up)

    def test_shard_requires_leases(self):
        with pytest.raises(ReproError, match="lease manager"):
            CampaignScheduler(shard=(0, 2))

    def test_bad_shard_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="shard"):
            CampaignScheduler(
                leases=LeaseManager(tmp_path), shard=(2, 2)
            )
