"""Tests for the simulated vendor profiling backends."""

from __future__ import annotations

import pytest

from repro.errors import VendorError
from repro.gpusim.device import A100, MI300X, MiB
from repro.gpusim.instruction import (
    InstructionBatchRecord,
    InstructionKind,
    InstructionRecord,
)
from repro.gpusim.kernel import GridConfig, KernelArgument, KernelLaunch
from repro.gpusim.runtime import MemcpyKind, create_runtime
from repro.vendors import (
    ComputeSanitizerBackend,
    NvbitBackend,
    RocprofilerBackend,
    default_backend_for_vendor,
)
from repro.gpusim.device import Vendor


def collect_callbacks(backend, runtime, fine_grained=False, kernel_args=None):
    """Attach a backend, run a tiny workload, and return the callbacks seen."""
    received = []
    backend.register_callback(received.append)
    backend.attach(runtime)
    if fine_grained:
        backend.enable_instruction_tracing(True)
    obj = runtime.malloc(1 * MiB)
    runtime.memcpy(4096, MemcpyKind.HOST_TO_DEVICE)
    args = kernel_args or [KernelArgument(address=obj.address, size=obj.size, accesses_per_byte=0.01)]
    runtime.launch_kernel("test_kernel", GridConfig.for_elements(256), arguments=args)
    runtime.synchronize()
    runtime.free(obj)
    return received


class TestAttachment:
    def test_default_backend_per_vendor(self):
        assert isinstance(default_backend_for_vendor(Vendor.NVIDIA), ComputeSanitizerBackend)
        assert isinstance(default_backend_for_vendor(Vendor.AMD), RocprofilerBackend)

    def test_vendor_mismatch_rejected(self):
        amd_runtime = create_runtime(MI300X)
        with pytest.raises(VendorError):
            ComputeSanitizerBackend().attach(amd_runtime)
        nvidia_runtime = create_runtime(A100)
        with pytest.raises(VendorError):
            RocprofilerBackend().attach(nvidia_runtime)

    def test_double_attach_rejected(self):
        backend = ComputeSanitizerBackend()
        backend.attach(create_runtime(A100))
        with pytest.raises(VendorError):
            backend.attach(create_runtime(A100))

    def test_detach_stops_callbacks(self):
        runtime = create_runtime(A100)
        backend = ComputeSanitizerBackend()
        received = []
        backend.register_callback(received.append)
        backend.attach(runtime)
        runtime.malloc(4096)
        count = len(received)
        backend.detach()
        runtime.malloc(4096)
        assert len(received) == count


class TestComputeSanitizer:
    def test_callback_ids_follow_sanitizer_naming(self):
        received = collect_callbacks(ComputeSanitizerBackend(), create_runtime(A100))
        cbids = {cb.cbid for cb in received}
        assert "SANITIZER_CBID_RESOURCE_MEMORY_ALLOC" in cbids
        assert "SANITIZER_CBID_LAUNCH_BEGIN" in cbids
        assert "SANITIZER_CBID_LAUNCH_END" in cbids
        assert "SANITIZER_CBID_MEMCPY_STARTING" in cbids
        assert "SANITIZER_CBID_SYNCHRONIZE" in cbids

    def test_patch_module_enables_instruction_tracing(self):
        backend = ComputeSanitizerBackend()
        assert not backend.instruction_tracing_enabled
        backend.sanitizer_patch_module("libtorch_cuda.so")
        assert backend.instruction_tracing_enabled
        assert "libtorch_cuda.so" in backend.patched_modules

    def test_device_records_arrive_as_one_batch_per_launch(self):
        backend = ComputeSanitizerBackend()
        backend.sanitizer_patch_module("all")
        received = collect_callbacks(backend, create_runtime(A100), fine_grained=True)
        batches = [cb for cb in received if cb.cbid == "SANITIZER_CBID_DEVICE_RECORD_BATCH"]
        assert len(batches) == 1, "expected one columnar batch per kernel launch"
        batch = batches[0].payload
        assert isinstance(batch, InstructionBatchRecord)
        assert batch.access_count > 0
        # Sanitizer never reports arbitrary (OTHER) instruction kinds.
        assert InstructionKind.OTHER not in backend.instrumentable_kinds

    def test_per_record_mode_emits_memory_access_callbacks(self):
        backend = ComputeSanitizerBackend()
        backend.batch_device_records = False
        backend.sanitizer_patch_module("all")
        received = collect_callbacks(backend, create_runtime(A100), fine_grained=True)
        instr = [cb for cb in received if cb.cbid.startswith("SANITIZER_CBID_MEMORY_ACCESS")]
        assert instr, "expected memory-access callbacks after patching"

    def test_batched_and_per_record_modes_carry_identical_records(self):
        """The batch is a packaging change only: same records, same order."""
        launch = KernelLaunch(
            kernel_name="k",
            grid_config=GridConfig.for_elements(256),
            arguments=[KernelArgument(address=0x7000_0000, size=1 * MiB,
                                      is_read=True, is_written=True,
                                      accesses_per_byte=0.001)],
            launch_id=424242,
        )

        def device_records(batched: bool):
            backend = ComputeSanitizerBackend()
            backend.batch_device_records = batched
            backend.sanitizer_patch_module("all")
            received = []
            backend.register_callback(received.append)
            backend._emit_instructions(launch)
            out = []
            for cb in received:
                if isinstance(cb.payload, InstructionBatchRecord):
                    out.extend(cb.payload.iter_records())
                elif isinstance(cb.payload, InstructionRecord):
                    out.append(cb.payload)
            return out

        batched = device_records(True)
        unbatched = device_records(False)
        assert batched and unbatched
        assert batched == unbatched

    def test_enable_domain_bookkeeping(self):
        backend = ComputeSanitizerBackend()
        backend.sanitizer_enable_domain("launch")
        backend.sanitizer_enable_domain("memcpy")
        assert backend.enabled_domains == frozenset({"launch", "memcpy"})


class TestNvbit:
    def test_callback_ids_follow_nvbit_naming(self):
        received = collect_callbacks(NvbitBackend(), create_runtime(A100))
        cbids = {cb.cbid for cb in received}
        assert "NVBIT_CUDA_EVENT_cuMemAlloc" in cbids
        assert "NVBIT_CUDA_EVENT_cuLaunchKernel_exit" in cbids

    def test_sass_parsing_tracked_per_kernel(self):
        runtime = create_runtime(A100)
        backend = NvbitBackend()
        backend.attach(runtime)
        backend.enable_instruction_tracing(True)
        runtime.launch_kernel("kernel_a", GridConfig.for_elements(64))
        runtime.launch_kernel("kernel_a", GridConfig.for_elements(64))
        runtime.launch_kernel("kernel_b", GridConfig.for_elements(64))
        assert backend.sass_parse_count() == 2

    def test_no_sass_parsing_without_instrumentation(self):
        runtime = create_runtime(A100)
        backend = NvbitBackend()
        backend.attach(runtime)
        runtime.launch_kernel("kernel_a", GridConfig.for_elements(64))
        assert backend.sass_parse_count() == 0

    def test_instruction_filter(self):
        runtime = create_runtime(A100)
        backend = NvbitBackend()
        received = []
        backend.register_callback(received.append)
        backend.attach(runtime)
        backend.enable_instruction_tracing(True)
        backend.set_instruction_filter(frozenset({InstructionKind.GLOBAL_LOAD}))
        obj = runtime.malloc(1 * MiB)
        runtime.launch_kernel(
            "k",
            GridConfig.for_elements(64),
            arguments=[KernelArgument(address=obj.address, size=obj.size,
                                      is_read=True, is_written=True, accesses_per_byte=0.01)],
        )
        batches = [cb for cb in received if cb.cbid == "NVBIT_INSTR_BATCH"]
        assert batches
        records = [r for cb in batches for r in cb.payload.iter_records()]
        assert records
        assert all(r.kind is InstructionKind.GLOBAL_LOAD for r in records)

    def test_instruction_filter_per_record_mode(self):
        runtime = create_runtime(A100)
        backend = NvbitBackend()
        backend.batch_device_records = False
        received = []
        backend.register_callback(received.append)
        backend.attach(runtime)
        backend.enable_instruction_tracing(True)
        backend.set_instruction_filter(frozenset({InstructionKind.GLOBAL_LOAD}))
        obj = runtime.malloc(1 * MiB)
        runtime.launch_kernel(
            "k",
            GridConfig.for_elements(64),
            arguments=[KernelArgument(address=obj.address, size=obj.size,
                                      is_read=True, is_written=True, accesses_per_byte=0.01)],
        )
        instr = [cb for cb in received if cb.cbid.startswith("NVBIT_INSTR_")]
        assert instr
        assert all(cb.cbid == "NVBIT_INSTR_GLOBAL_LOAD" for cb in instr)


class TestRocprofiler:
    def test_callback_ids_follow_hip_naming(self):
        received = collect_callbacks(RocprofilerBackend(), create_runtime(MI300X))
        cbids = {cb.cbid for cb in received}
        assert "ROCPROFILER_HIP_API_ID_hipMalloc" in cbids
        assert "ROCPROFILER_HIP_API_ID_hipLaunchKernel_exit" in cbids
        assert "ROCPROFILER_HIP_API_ID_hipFree" in cbids

    def test_configure_services(self):
        backend = RocprofilerBackend()
        backend.rocprofiler_configure_callback("hip_runtime_api")
        backend.rocprofiler_configure_callback("kernel_dispatch")
        assert backend.configured_services == frozenset({"hip_runtime_api", "kernel_dispatch"})

    def test_cross_vendor_consistency_of_event_payloads(self):
        """The same workload produces the same *payload types* on both vendors."""
        nvidia = collect_callbacks(ComputeSanitizerBackend(), create_runtime(A100))
        amd = collect_callbacks(RocprofilerBackend(), create_runtime(MI300X))
        nvidia_types = {type(cb.payload).__name__ for cb in nvidia}
        amd_types = {type(cb.payload).__name__ for cb in amd}
        assert nvidia_types == amd_types
