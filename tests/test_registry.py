"""Hardening tests for the multi-namespace plugin registry."""

from __future__ import annotations

import sys
import textwrap

import pytest

import repro.tools
from repro.core.registry import (
    REGISTRY,
    Registry,
    RegistryNamespace,
    clear_registry,
    create_tool,
    discover_plugins,
    register_tool,
    registered_tools,
)
from repro.core.tool import PastaTool
from repro.errors import (
    DeviceError,
    ModelError,
    RegistryError,
    ToolError,
    VendorError,
)


class FakeTool(PastaTool):
    tool_name = "fake_tool"


@pytest.fixture
def restore_tools():
    """Snapshot nothing, but guarantee the built-in tools are back afterwards."""
    yield
    clear_registry("tools")
    repro.tools.register_builtin_tools()


# ---------------------------------------------------------------------- #
# per-namespace registration semantics
# ---------------------------------------------------------------------- #
class TestNamespaces:
    def test_every_extension_kind_has_a_namespace(self):
        assert set(REGISTRY.namespaces()) == {
            "tools", "vendors", "devices", "models", "analysis_models",
        }

    def test_unknown_namespace_is_a_registry_error(self):
        with pytest.raises(RegistryError, match="unknown registry namespace"):
            REGISTRY.namespace("gadgets")

    def test_duplicate_rejection_per_namespace(self, restore_tools):
        with pytest.raises(ToolError, match="already registered"):
            register_tool("kernel_frequency", FakeTool)
        with pytest.raises(DeviceError, match="already registered"):
            REGISTRY.register("devices", "a100",
                              REGISTRY.get("devices", "rtx3060"))
        with pytest.raises(ModelError, match="already registered"):
            REGISTRY.register("models", "alexnet", FakeTool)
        with pytest.raises(VendorError, match="already registered"):
            REGISTRY.register("vendors", "nvbit", FakeTool)

    def test_same_name_in_different_namespaces_is_fine(self, restore_tools):
        REGISTRY.register("tools", "shared_name", FakeTool)
        REGISTRY.register("models", "shared_name",
                          REGISTRY.get("models", "alexnet"), overwrite=False)
        assert "shared_name" in REGISTRY.namespace("tools")
        assert "shared_name" in REGISTRY.namespace("models")
        REGISTRY.namespace("models").unregister("shared_name")

    def test_overwrite_semantics(self, restore_tools):
        register_tool("fake_tool", FakeTool)
        class FakeTool2(PastaTool):
            tool_name = "fake_tool"
        with pytest.raises(ToolError):
            register_tool("fake_tool", FakeTool2)
        register_tool("fake_tool", FakeTool2, overwrite=True)
        assert type(create_tool("fake_tool")) is FakeTool2

    def test_factory_must_be_callable(self):
        with pytest.raises(ToolError, match="factory"):
            REGISTRY.register("tools", "not_callable", 42)

    def test_product_type_is_validated(self, restore_tools):
        REGISTRY.register("tools", "lying_factory", lambda: object())
        with pytest.raises(ToolError, match="not a valid tool"):
            create_tool("lying_factory")

    def test_aliases_resolve_to_canonical_entries(self):
        devices = REGISTRY.namespace("devices")
        assert devices.get("3060") is devices.get("rtx3060")
        assert "3060" not in devices.names()  # canonical names only
        assert devices.aliases()["3060"] == "rtx3060"
        vendors = REGISTRY.namespace("vendors")
        assert vendors.resolve("sanitizer") == "compute_sanitizer"

    def test_lookup_is_case_insensitive(self):
        assert REGISTRY.namespace("devices").resolve("A100") == "a100"
        assert create_tool("Kernel_Frequency").tool_name == "kernel_frequency"

    def test_unknown_name_error_lists_namespace_contents(self):
        with pytest.raises(DeviceError, match="registered devices"):
            REGISTRY.get("devices", "h100")
        with pytest.raises(ToolError, match="registered tools"):
            create_tool("no_such_tool")

    def test_decorator_registration(self, restore_tools):
        @REGISTRY.provider("tools", "decorated_tool")
        class DecoratedTool(PastaTool):
            tool_name = "decorated_tool"

        assert create_tool("decorated_tool").tool_name == "decorated_tool"

        @REGISTRY.provider("tools")
        class InferredTool(PastaTool):
            tool_name = "inferred_tool"

        assert "inferred_tool" in registered_tools()


# ---------------------------------------------------------------------- #
# clear/reset isolation
# ---------------------------------------------------------------------- #
class TestClearIsolation:
    def test_clear_registry_empties_only_the_tool_namespace(self, restore_tools):
        clear_registry()
        assert registered_tools() == []
        # other namespaces are untouched
        assert "a100" in REGISTRY.namespace("devices")
        assert "alexnet" in REGISTRY.namespace("models")

    def test_cleared_namespace_does_not_silently_reseed(self, restore_tools):
        clear_registry()
        register_tool("fake_tool", FakeTool)
        assert registered_tools() == ["fake_tool"]

    def test_builtins_restore_explicitly(self, restore_tools):
        clear_registry()
        repro.tools.register_builtin_tools()
        assert "kernel_frequency" in registered_tools()

    def test_reset_reseeds_lazily(self, restore_tools):
        ns = REGISTRY.namespace("tools")
        ns.reset()
        assert "kernel_frequency" in registered_tools()

    def test_isolation_between_tests_first_half(self, restore_tools):
        # Pairs with ...second_half: whichever order pytest runs them in,
        # neither may observe the other's scratch registration.
        assert "leak_probe" not in registered_tools()
        register_tool("leak_probe", FakeTool)

    def test_isolation_between_tests_second_half(self, restore_tools):
        assert "leak_probe" not in registered_tools()
        register_tool("leak_probe", FakeTool)


# ---------------------------------------------------------------------- #
# entry-point discovery (synthetic in-test distribution)
# ---------------------------------------------------------------------- #
def _make_plugin_dist(tmp_path, *, tool_name="ep_demo_tool", broken=False):
    """Lay out an installed-distribution skeleton importlib.metadata can read."""
    module = tmp_path / "pasta_demo_plugin.py"
    module.write_text(textwrap.dedent(
        """
        from repro.core.tool import PastaTool


        class DemoTool(PastaTool):
            tool_name = "%s"
        """ % tool_name
    ))
    dist_info = tmp_path / "pasta_demo-0.1.dist-info"
    dist_info.mkdir()
    (dist_info / "METADATA").write_text(
        "Metadata-Version: 2.1\nName: pasta-demo\nVersion: 0.1\n"
    )
    target = "pasta_demo_plugin:MissingTool" if broken else "pasta_demo_plugin:DemoTool"
    (dist_info / "entry_points.txt").write_text(
        f"[pasta.tools]\n{tool_name} = {target}\n"
    )
    return tmp_path


class TestEntryPointDiscovery:
    @pytest.fixture
    def plugin_path(self, tmp_path, restore_tools):
        _make_plugin_dist(tmp_path)
        sys.path.insert(0, str(tmp_path))
        try:
            yield tmp_path
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("pasta_demo_plugin", None)

    def test_discover_registers_plugin_tools(self, plugin_path):
        found = discover_plugins(path=[str(plugin_path)])
        assert found == {"tools": ["ep_demo_tool"]}
        tool = create_tool("ep_demo_tool")
        assert tool.tool_name == "ep_demo_tool"
        assert isinstance(tool, PastaTool)

    def test_discovery_never_shadows_existing_registrations(self, plugin_path):
        register_tool("ep_demo_tool", FakeTool)
        found = discover_plugins(path=[str(plugin_path)])
        assert found == {}
        assert type(create_tool("ep_demo_tool")) is FakeTool

    def test_broken_plugin_warns_and_is_skipped(self, tmp_path, restore_tools):
        _make_plugin_dist(tmp_path, tool_name="ep_broken_tool", broken=True)
        sys.path.insert(0, str(tmp_path))
        try:
            with pytest.warns(RuntimeWarning, match="ep_broken_tool"):
                found = discover_plugins(path=[str(tmp_path)])
            assert found == {}
            assert "ep_broken_tool" not in registered_tools()
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("pasta_demo_plugin", None)

    def test_isolated_registry_discovers_independently(self, plugin_path):
        registry = Registry()
        registry.add_namespace(RegistryNamespace(
            "tools", kind="factory", noun="tool", error=ToolError,
            entry_point_group="pasta.tools",
        ))
        registry.discover(path=[str(plugin_path)])
        assert "ep_demo_tool" in registry.names("tools")
        # the global registry was not touched by the isolated one
        assert "ep_demo_tool" not in registered_tools()
