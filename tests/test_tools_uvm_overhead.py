"""Tests for the UVM prefetching tool and the overhead-comparison tool."""

from __future__ import annotations

import pytest

from repro.errors import ToolError
from repro.core.events import KernelArgumentInfo, KernelLaunchEvent, MemoryAllocEvent
from repro.gpusim.device import A100, RTX3060
from repro.tools import (
    ANALYSIS_VARIANTS,
    AddressRange,
    KernelScheduleEntry,
    OverheadComparison,
    PrefetchPolicy,
    UvmPrefetchAdvisor,
    UvmPrefetchExecutor,
    WorkloadProfile,
)
from repro import api
from repro.workloads import record_uvm_schedule

MB = 1024 * 1024


class TestUvmPrefetchAdvisor:
    def test_schedule_records_object_and_tensor_ranges(self):
        advisor = UvmPrefetchAdvisor()
        advisor.handle_event(MemoryAllocEvent(address=0x10_000000, size=20 * MB, object_id=1))
        args = (
            KernelArgumentInfo(address=0x10_000000 + 4 * MB, size=2 * MB,
                               referenced_bytes=2 * MB, access_count=100),
            KernelArgumentInfo(address=0x10_000000 + 10 * MB, size=1 * MB,
                               referenced_bytes=0, access_count=0),
        )
        advisor.handle_event(KernelLaunchEvent(kernel_name="k", launch_id=1, arguments=args,
                                               duration_ns=1000))
        assert len(advisor.schedule) == 1
        entry = advisor.schedule[0]
        # Only the referenced tensor appears; its containing object is 20 MB.
        assert len(entry.tensor_ranges) == 1
        assert entry.tensor_ranges[0].size == 2 * MB
        assert entry.object_ranges[0].size == 20 * MB
        assert advisor.managed_footprint_bytes() == 20 * MB

    def test_unknown_object_falls_back_to_argument_range(self):
        advisor = UvmPrefetchAdvisor()
        args = (KernelArgumentInfo(address=0x50_000000, size=MB, referenced_bytes=MB, access_count=1),)
        advisor.handle_event(KernelLaunchEvent(kernel_name="k", launch_id=1, arguments=args))
        assert advisor.schedule[0].object_ranges[0].size == MB

    def test_report(self):
        advisor = UvmPrefetchAdvisor()
        report = advisor.report()
        assert report["kernels"] == 0


def synthetic_schedule(num_objects=5, tensors_per_object=4, object_size=40 * MB,
                       tensor_size=2 * MB):
    """A pool-allocator-like schedule: each driver object holds several tensors,
    and consecutive kernels walk through the tensors of one object before moving
    to the next (so object-level prefetch of one segment benefits several
    upcoming kernels)."""
    schedule = []
    launch_id = 0
    for obj in range(num_objects):
        base = 0x10_000000 + obj * 2 * object_size
        for t in range(tensors_per_object):
            tensor_addr = base + t * (object_size // tensors_per_object)
            schedule.append(KernelScheduleEntry(
                launch_id=launch_id, kernel_name=f"k{launch_id}", duration_ns=200_000,
                tensor_ranges=[AddressRange(tensor_addr, tensor_size)],
                object_ranges=[AddressRange(base, object_size)],
            ))
            launch_id += 1
    # Re-touch the first object's tensors at the end (temporal reuse).
    base = 0x10_000000
    for t in range(tensors_per_object):
        tensor_addr = base + t * (object_size // tensors_per_object)
        schedule.append(KernelScheduleEntry(
            launch_id=launch_id, kernel_name=f"reuse{t}", duration_ns=200_000,
            tensor_ranges=[AddressRange(tensor_addr, tensor_size)],
            object_ranges=[AddressRange(base, object_size)],
        ))
        launch_id += 1
    return schedule


class TestUvmPrefetchExecutor:
    def test_invalid_oversubscription_rejected(self):
        with pytest.raises(ToolError):
            UvmPrefetchExecutor(RTX3060, oversubscription_factor=0)

    def test_no_oversubscription_prefetch_beats_baseline(self):
        executor = UvmPrefetchExecutor(RTX3060, oversubscription_factor=1.0)
        norm = executor.normalized_times(synthetic_schedule())
        assert norm["object_level"] < 1.0
        assert norm["tensor_level"] < 1.0

    def test_oversubscription_object_level_thrashes(self):
        executor = UvmPrefetchExecutor(RTX3060, oversubscription_factor=3.0)
        results = executor.compare_policies(synthetic_schedule())
        baseline = results[PrefetchPolicy.NONE]
        object_level = results[PrefetchPolicy.OBJECT_LEVEL]
        tensor_level = results[PrefetchPolicy.TENSOR_LEVEL]
        assert object_level.execution_time_ns > baseline.execution_time_ns
        assert tensor_level.execution_time_ns < object_level.execution_time_ns
        assert object_level.stats.pages_evicted > tensor_level.stats.pages_evicted

    def test_empty_schedule(self):
        executor = UvmPrefetchExecutor(RTX3060)
        result = executor.execute([], PrefetchPolicy.NONE)
        assert result.execution_time_ns == 0.0

    def test_normalized_to_baseline_is_one(self):
        executor = UvmPrefetchExecutor(RTX3060)
        results = executor.compare_policies(synthetic_schedule(num_objects=2, tensors_per_object=3))
        baseline = results[PrefetchPolicy.NONE]
        assert baseline.normalized_to(baseline) == pytest.approx(1.0)

    def test_recorded_model_schedule_round_trips(self):
        schedule, advisor, _result = record_uvm_schedule("resnet18", device="rtx3060",
                                                         batch_size=2)
        assert len(schedule) > 50
        executor = UvmPrefetchExecutor(RTX3060, oversubscription_factor=1.0)
        norm = executor.normalized_times(schedule)
        assert norm["none"] == pytest.approx(1.0)
        assert norm["tensor_level"] <= 1.0


class TestOverheadComparisonTool:
    def test_workload_profile_records_launches(self):
        profile = WorkloadProfile()
        api.run("alexnet", device="a100", tools=[profile], batch_size=4)
        assert len(profile.launches) > 10
        assert profile.total_accesses() > 0
        assert profile.total_execution_ns() > 0

    def test_variant_ordering_matches_figure9(self):
        profile = WorkloadProfile()
        api.run("resnet18", device="a100", tools=[profile], batch_size=2)
        comparison = OverheadComparison()
        rows = comparison.evaluate(profile.launches, A100)
        assert set(rows) == {name for name, _m, _b in ANALYSIS_VARIANTS}
        assert (rows["CS-GPU"].normalized_overhead
                < rows["CS-CPU"].normalized_overhead
                < rows["NVBIT-CPU"].normalized_overhead)

    def test_speedups_are_orders_of_magnitude(self):
        profile = WorkloadProfile()
        api.run("resnet18", device="a100", tools=[profile], batch_size=2)
        speedups = OverheadComparison().speedup_of_gpu_analysis(profile.launches, A100)
        assert speedups["CS-CPU"] > 50
        assert speedups["NVBIT-CPU"] > speedups["CS-CPU"]

    def test_a100_benefits_more_than_3060(self):
        profile = WorkloadProfile()
        api.run("resnet18", device="a100", tools=[profile], batch_size=2)
        comparison = OverheadComparison()
        a100 = comparison.speedup_of_gpu_analysis(profile.launches, A100)
        r3060 = comparison.speedup_of_gpu_analysis(profile.launches, RTX3060)
        assert a100["CS-CPU"] > r3060["CS-CPU"]

    def test_breakdown_shapes_match_figure10(self):
        profile = WorkloadProfile()
        api.run("resnet18", device="a100", tools=[profile], batch_size=2)
        rows = OverheadComparison().evaluate(profile.launches, A100)
        assert rows["CS-GPU"].fractions["collection"] > 0.5
        assert rows["CS-CPU"].fractions["analysis"] > 0.5
        assert rows["NVBIT-CPU"].fractions["analysis"] > 0.5
