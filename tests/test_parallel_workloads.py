"""Tests for multi-GPU parallelism runners and the workload runner glue."""

from __future__ import annotations

import pytest

from repro.errors import FrameworkError, ReproError
from repro.dlframework.models.megatron import MegatronConfig
from repro.dlframework.parallel import (
    DataParallelRunner,
    PipelineParallelRunner,
    TensorParallelRunner,
    create_parallel_runner,
)
from repro.gpusim.device import A100
from repro.gpusim.multigpu import DeviceSet
from repro.tools import KernelFrequencyTool
from repro import api

#: A deliberately small Megatron configuration so parallelism tests stay fast.
SMALL_CONFIG = MegatronConfig(
    vocab_size=2048, hidden=256, num_layers=4, num_heads=8, seq_length=128, batch_size=2
)


def two_a100s() -> DeviceSet:
    return DeviceSet([A100, A100])


class TestParallelRunners:
    def test_requires_at_least_two_devices(self):
        with pytest.raises(FrameworkError):
            DataParallelRunner(DeviceSet([A100]), SMALL_CONFIG)

    def test_unknown_strategy(self):
        with pytest.raises(FrameworkError):
            create_parallel_runner("expert_parallel", two_a100s(), SMALL_CONFIG)

    def test_factory_returns_the_right_runner(self):
        assert isinstance(create_parallel_runner("data_parallel", two_a100s(), SMALL_CONFIG),
                          DataParallelRunner)
        assert isinstance(create_parallel_runner("tensor_parallel", two_a100s(), SMALL_CONFIG),
                          TensorParallelRunner)
        assert isinstance(create_parallel_runner("pipeline_parallel", two_a100s(), SMALL_CONFIG),
                          PipelineParallelRunner)

    def test_data_parallel_is_symmetric(self):
        runner = DataParallelRunner(two_a100s(), SMALL_CONFIG)
        result = runner.run_iteration()
        peaks = result.peak_bytes()
        events = result.allocation_event_counts()
        assert len(peaks) == 2
        assert peaks[0] == pytest.approx(peaks[1], rel=0.02)
        assert events[0] == events[1]

    def test_tensor_parallel_is_symmetric_with_half_the_peak_of_dp(self):
        dp = DataParallelRunner(two_a100s(), SMALL_CONFIG).run_iteration()
        tp = TensorParallelRunner(two_a100s(), SMALL_CONFIG).run_iteration()
        tp_peaks, dp_peaks = tp.peak_bytes(), dp.peak_bytes()
        assert tp_peaks[0] == pytest.approx(tp_peaks[1], rel=0.02)
        # TP shards every layer, so its peak is well below DP's full replica.
        assert tp_peaks[0] < 0.8 * dp_peaks[0]

    def test_pipeline_parallel_is_asymmetric_with_heavier_last_stage(self):
        pp = PipelineParallelRunner(two_a100s(), SMALL_CONFIG).run_iteration()
        first_peak, last_peak = pp.peak_bytes()
        # The last stage owns the final norm + LM head and produces the logits,
        # so it carries the heavier tail (Figure 15c).
        assert last_peak > first_peak

    def test_usage_timelines_are_recorded_per_rank(self):
        result = DataParallelRunner(two_a100s(), SMALL_CONFIG).run_iteration()
        timelines = result.usage_timelines()
        assert len(timelines) == 2
        assert all(len(t) > 100 for t in timelines)


class TestWorkloadRunner:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            api.run("alexnet", mode="finetune")

    def test_returns_summary_tools_and_reports(self):
        freq = KernelFrequencyTool()
        result = api.run("alexnet", device="rtx3060", tools=[freq], batch_size=2)
        assert result.summary.kernel_launches == freq.total_launches
        assert result.tool("kernel_frequency") is freq
        assert "overhead" in result.reports()

    def test_missing_tool_lookup_raises(self):
        result = api.run("alexnet", device="rtx3060", batch_size=2)
        with pytest.raises(ReproError):
            result.tool("kernel_frequency")

    def test_train_mode_runs(self):
        result = api.run("resnet18", mode="train", batch_size=2)
        assert result.summary.mode == "train"
        assert result.summary.kernel_launches > 100

    def test_device_can_be_a_spec(self):
        result = api.run("alexnet", device=A100, batch_size=2)
        assert result.runtime.device.spec is A100
