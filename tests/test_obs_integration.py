"""Integration tests: self-telemetry wired through sessions, campaigns, CLI."""

from __future__ import annotations

import json
import pickle

import pytest

import repro
from repro.api import ProfileSpec, execute
from repro.campaign.cache import ResultCache
from repro.campaign.scheduler import CampaignScheduler, JobAttemptsError
from repro.commands import main
from repro.obs import (
    Telemetry,
    activated,
    deactivate,
    read_records,
    reset_logging,
    summarize,
    telemetry_path,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    deactivate()
    reset_logging()
    yield
    deactivate()
    reset_logging()


def _spans(records):
    return [r for r in records if r["type"] == "span"]


# ---------------------------------------------------------------------- #
# profile runs
# ---------------------------------------------------------------------- #
class TestProfileTelemetry:
    def test_fine_grained_run_covers_wall_time(self, tmp_path):
        spec = ProfileSpec(model="alexnet", device="rtx3060", batch_size=2,
                           tools=("kernel_frequency",), fine_grained=True)
        telemetry = Telemetry.open(tmp_path)
        with activated(telemetry):
            with telemetry.span("cli.profile"):
                result = execute(spec)
        records = read_records(tmp_path)
        names = {r["name"] for r in _spans(records)}
        assert {"cli.profile", "profile.setup", "profile.simulate",
                "session.run"} <= names
        summary = summarize(records)
        # Acceptance gate: the span tree accounts for >= 95% of wall time.
        assert summary["coverage"] >= 0.95
        assert summary["errors"] == 0
        # The session span sampled the pipeline's counters.
        session_span = next(r for r in _spans(records) if r["name"] == "session.run")
        counters = session_span["counters"]
        assert counters["events_processed"] > 0
        assert counters["batches_dispatched"] > 0
        assert counters["alloc.allocations"] > 0
        assert "alloc.free_list_depth" in counters
        assert any(k.startswith("hook_ns.") for k in counters)
        # Provenance carries the spec digest.
        assert summary["provenance"]["spec_digest"] == spec.digest(repro.__version__)
        assert result.summary.as_dict()["kernel_launches"] > 0

    def test_reports_identical_with_telemetry_on_and_off(self, tmp_path):
        spec = ProfileSpec(model="alexnet", device="rtx3060", batch_size=2,
                           tools=("kernel_frequency",))
        plain = execute(spec).reports()
        telemetry = Telemetry.open(tmp_path)
        with activated(telemetry):
            instrumented = execute(spec).reports()
        # Telemetry must not perturb what the profiler reports: the two
        # documents are byte-identical.
        encode = lambda reports: json.dumps(reports, sort_keys=True, default=str)
        assert encode(plain) == encode(instrumented)

    def test_disabled_telemetry_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        spec = ProfileSpec(model="alexnet", device="rtx3060", batch_size=2,
                           tools=("kernel_frequency",))
        execute(spec)
        assert list(tmp_path.rglob("telemetry.jsonl")) == []


# ---------------------------------------------------------------------- #
# campaign runs
# ---------------------------------------------------------------------- #
def _stub_runner(payload):
    if payload["model"] == "explodes":
        raise RuntimeError("boom")
    return {
        "job": payload,
        "status": "ok",
        "summary": {"kernel_launches": 1, "total_kernel_time_ns": 10,
                    "peak_allocated_bytes": 8},
        "reports": {},
    }


def _jobs(*models):
    return [ProfileSpec(model=m, tools=("kernel_frequency",)) for m in models]


class TestCampaignTelemetry:
    def test_job_spans_cache_and_status_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        telemetry = Telemetry.open(tmp_path / "t1")
        with activated(telemetry):
            sched = CampaignScheduler(jobs=2, cache=cache, job_runner=_stub_runner)
            sched.run(_jobs("a", "b", "explodes"), name="first")
        records = read_records(tmp_path / "t1")
        metrics = summarize(records)["metrics"]["counters"]
        assert metrics["campaign.cache_misses"] == 3
        assert metrics["campaign.jobs_ok"] == 2
        assert metrics["campaign.jobs_failed"] == 1
        assert metrics.get("campaign.cache_hits", 0) == 0
        job_spans = [r for r in _spans(records) if r["name"] == "campaign.job"]
        assert len(job_spans) == 3
        assert sorted(s["attrs"]["status"] for s in job_spans) == [
            "failed", "ok", "ok"]
        failed = next(s for s in job_spans if s["attrs"]["status"] == "failed")
        assert failed["status"] == "error"
        assert "boom" in failed["error"]

        # Second run over the same cache: the two successes are cache hits.
        telemetry = Telemetry.open(tmp_path / "t2")
        with activated(telemetry):
            sched = CampaignScheduler(jobs=2, cache=cache, job_runner=_stub_runner)
            sched.run(_jobs("a", "b"), name="second")
        metrics = summarize(read_records(tmp_path / "t2"))["metrics"]["counters"]
        assert metrics["campaign.cache_hits"] == 2
        assert metrics["campaign.jobs_cached"] == 2
        assert "campaign.cache_misses" not in metrics

    def test_retry_counters_and_span_coverage(self, tmp_path):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _stub_runner(payload)

        telemetry = Telemetry.open(tmp_path)
        with activated(telemetry):
            sched = CampaignScheduler(jobs=1, executor="serial", retries=2,
                                      job_runner=flaky)
            result = sched.run(_jobs("a", "b", "c"), name="retry")
        assert result.failed == 0
        summary = summarize(read_records(tmp_path))
        # Job "a" succeeded on its third attempt: exactly 2 retries.
        assert summary["metrics"]["counters"]["campaign.retries"] == 2
        retried = [r for r in _spans(read_records(tmp_path))
                   if r["name"] == "campaign.job" and r["counters"]["retried"]]
        assert len(retried) == 1 and retried[0]["counters"]["retried"] == 2

    def test_campaign_run_span_carries_job_status_counts(self, tmp_path):
        telemetry = Telemetry.open(tmp_path)
        with activated(telemetry):
            sched = CampaignScheduler(jobs=1, executor="serial",
                                      job_runner=_stub_runner)
            sched.run(_jobs("a", "explodes"), name="counted")
        run_span = next(r for r in _spans(read_records(tmp_path))
                        if r["name"] == "campaign.run")
        assert run_span["counters"]["jobs_ok"] == 1
        assert run_span["counters"]["jobs_failed"] == 1


# ---------------------------------------------------------------------- #
# retry visibility (satellite): every attempt's error is kept
# ---------------------------------------------------------------------- #
class TestRetryVisibility:
    def test_failed_job_keeps_every_attempts_error(self):
        def always_fails(payload):
            raise RuntimeError(f"attempt failure for {payload['model']}")

        sched = CampaignScheduler(jobs=1, executor="serial", retries=2,
                                  job_runner=always_fails)
        result = sched.run(_jobs("a"), name="attempts")
        (outcome,) = result.failures()
        assert [e["attempt"] for e in outcome.errors] == [1, 2, 3]
        assert all("attempt failure" in e["error"] for e in outcome.errors)
        assert all("RuntimeError" in e["traceback"] for e in outcome.errors)
        # Last attempt's message also remains the headline error, without a
        # JobAttemptsError prefix stutter.
        assert outcome.error.startswith("RuntimeError: attempt failure")
        summary_errors = result.summary()["failures"][0]["errors"]
        assert len(summary_errors) == 3

    def test_success_after_failures_keeps_earlier_errors(self):
        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("first try only")
            return _stub_runner(payload)

        sched = CampaignScheduler(jobs=1, executor="serial", retries=1,
                                  job_runner=flaky)
        result = sched.run(_jobs("a"))
        outcome = result.outcomes[0]
        assert outcome.ok
        assert outcome.attempts == 2
        assert [e["attempt"] for e in outcome.errors] == [1]
        assert "ValueError: first try only" in outcome.errors[0]["error"]

    def test_job_attempts_error_survives_pickling(self):
        error = JobAttemptsError([
            {"attempt": 1, "error": "ValueError: a", "traceback": "tb1"},
            {"attempt": 2, "error": "ValueError: b", "traceback": "tb2"},
        ])
        revived = pickle.loads(pickle.dumps(error))
        assert isinstance(revived, JobAttemptsError)
        assert revived.errors == error.errors
        assert str(revived) == "ValueError: b"

    def test_process_pool_keeps_attempt_errors(self):
        sched = CampaignScheduler(jobs=2, executor="process", retries=1)
        result = sched.run(_jobs("no_such_model"), name="pool")
        (outcome,) = result.failures()
        assert len(outcome.errors) == 2
        assert all("no_such_model" in e["error"] for e in outcome.errors)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_version_flag_everywhere(self, capsys):
        for argv in (["--version"], ["profile", "--version"],
                     ["campaign", "--version"], ["trace", "--version"],
                     ["telemetry", "--version"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 0
            assert f"pasta {repro.__version__}" in capsys.readouterr().out

    def test_profile_with_telemetry_flag(self, tmp_path, capsys):
        # The acceptance scenario: a fine-grained gpt2 run whose span tree
        # accounts for >= 95% of measured wall time.
        code = main(["profile", "gpt2", "--tool", "kernel_frequency",
                     "--fine-grained", "--json",
                     "--telemetry", str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["self_overhead"]["telemetry_enabled"] is True
        assert 0.0 <= document["self_overhead"]["overhead_fraction"] <= 1.0
        assert f"telemetry written to {telemetry_path(tmp_path)}" in captured.err
        summary = summarize(read_records(tmp_path))
        assert summary["roots"] == ["cli.profile"]
        assert summary["coverage"] >= 0.95

    def test_no_self_overhead_section_without_telemetry(self, capsys):
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert "self_overhead" not in document

    def test_telemetry_env_var_activates(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("PASTA_TELEMETRY", str(tmp_path))
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2", "--json"])
        assert code == 0
        assert telemetry_path(tmp_path).exists()

    def test_telemetry_summary_top_export(self, tmp_path, capsys):
        assert main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2", "--json",
                     "--telemetry", str(tmp_path)]) == 0
        capsys.readouterr()

        assert main(["telemetry", "summary", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "cli.profile" in out

        assert main(["telemetry", "top", str(tmp_path), "-n", "3"]) == 0
        assert "self" in capsys.readouterr().out

        assert main(["telemetry", "export", str(tmp_path)]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported[0]["type"] == "manifest"

        assert main(["telemetry", "export", str(tmp_path), "--tree"]) == 0
        assert "cli.profile" in capsys.readouterr().out

        assert main(["telemetry", "summary", "--json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["spans"] >= 4

    def test_telemetry_summary_missing_file_errors(self, tmp_path, capsys):
        assert main(["telemetry", "summary", str(tmp_path / "nope")]) == 1
        assert "no telemetry file" in capsys.readouterr().err

    def test_campaign_run_with_telemetry(self, tmp_path, capsys):
        # The acceptance scenario: a 3-job campaign whose span tree accounts
        # for >= 95% of measured wall time.
        spec = {"name": "mini", "models": ["alexnet", "resnet18", "gpt2"],
                "devices": ["rtx3060"], "tools": ["kernel_frequency"],
                "batch_size": 2}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        code = main(["campaign", "run", str(spec_path), "--no-cache",
                     "--telemetry", str(tmp_path / "obs")])
        assert code == 0
        summary = summarize(read_records(tmp_path / "obs"))
        assert summary["roots"] == ["cli.campaign"]
        assert summary["metrics"]["counters"]["campaign.jobs_ok"] == 3
        assert summary["by_name"]["campaign.job"]["count"] == 3
        assert summary["coverage"] >= 0.95

    def test_log_level_flag(self, tmp_path, capsys):
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--device", "rtx3060", "--batch-size", "2", "--json",
                     "--telemetry", str(tmp_path), "--log-level", "debug"])
        assert code == 0
        err = capsys.readouterr().err
        assert "span session.run" in err

    def test_bad_log_level_is_usage_error(self, capsys):
        code = main(["profile", "alexnet", "--tool", "kernel_frequency",
                     "--log-level", "shouty"])
        assert code == 2
        assert "shouty" in capsys.readouterr().err
