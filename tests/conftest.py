"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dlframework.context import FrameworkContext
from repro.dlframework.engine import ExecutionEngine
from repro.gpusim.device import A100, MI300X, RTX3060
from repro.gpusim.runtime import AcceleratorRuntime, create_runtime


@pytest.fixture
def a100_runtime() -> AcceleratorRuntime:
    """A fresh A100 runtime."""
    return create_runtime(A100)


@pytest.fixture
def rtx3060_runtime() -> AcceleratorRuntime:
    """A fresh RTX 3060 runtime."""
    return create_runtime(RTX3060)


@pytest.fixture
def mi300x_runtime() -> AcceleratorRuntime:
    """A fresh MI300X (AMD) runtime."""
    return create_runtime(MI300X)


@pytest.fixture
def a100_ctx(a100_runtime: AcceleratorRuntime) -> FrameworkContext:
    """A framework context bound to an A100 runtime."""
    return FrameworkContext(a100_runtime)


@pytest.fixture
def a100_engine(a100_ctx: FrameworkContext) -> ExecutionEngine:
    """An execution engine over the A100 context."""
    return ExecutionEngine(a100_ctx)
